"""Command-line interface.

Exposes the library's main entry points without writing Python::

    python -m repro query GRAPH.txt SOURCE TARGET [--method ifca]
    python -m repro query-batch GRAPH.txt PAIRS.txt [--strategy auto]
    python -m repro stats GRAPH.txt
    python -m repro generate sbm --block-size 100 --degree 5 OUT.txt
    python -m repro compare EN [--max-updates 250]
    python -m repro serve-bench GRAPH.txt [--ops 2000 --journal WAL.jsonl]
    python -m repro serve GRAPH.txt [--port 7420 --journal WAL.jsonl]
    python -m repro replica HOST:PORT REPLICA.wal [--port 7421]
    python -m repro chaos GRAPH.txt --plan kernel-crash
    python -m repro chaos-net [--scenario kill-primary] [--artifacts DIR]
    python -m repro reproduce [--quick] [--out results]
    python -m repro report [--markdown]
    python -m repro calibrate-lambda

Graphs are plain edge lists (``u v`` per line, ``#``/``%`` comments).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.baselines.arrow import ArrowMethod
from repro.baselines.base import ReachabilityMethod
from repro.baselines.bibfs import BiBFSMethod
from repro.baselines.dagger import DaggerMethod
from repro.baselines.dbl import DBLMethod
from repro.baselines.ip import IPMethod
from repro.baselines.tol import TOLMethod
from repro.core.ifca import IFCAMethod
from repro.datasets.registry import DATASET_ORDER
from repro.datasets.sbm import two_block_sbm
from repro.datasets.scale_free import (
    erdos_renyi_graph,
    preferential_attachment_graph,
    rmat_graph,
    star_heavy_graph,
)
from repro.experiments.tables import format_table
from repro.graph.digraph import DynamicDiGraph
from repro.graph.io import read_edge_list, write_edge_list

METHOD_FACTORIES: Dict[str, Callable[[DynamicDiGraph], ReachabilityMethod]] = {
    "ifca": lambda g: IFCAMethod(g),
    "bibfs": lambda g: BiBFSMethod(g),
    "arrow": lambda g: ArrowMethod(g, c_num_walks=1.0),
    "tol": lambda g: TOLMethod(g),
    "ip": lambda g: IPMethod(g),
    "dagger": lambda g: DaggerMethod(g),
    "dbl": lambda g: DBLMethod(g),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="IFCA reachability toolkit (ICDE 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("query", help="answer one reachability query")
    q.add_argument("graph", help="edge-list file")
    q.add_argument("source", type=int)
    q.add_argument("target", type=int)
    q.add_argument(
        "--method", choices=sorted(METHOD_FACTORIES), default="ifca"
    )
    q.add_argument(
        "--kernels",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="freeze a CSR snapshot up front so the query runs on the "
        "vectorized kernels (--no-kernels pins the dict path)",
    )
    q.set_defaults(func=cmd_query)

    qb = sub.add_parser(
        "query-batch",
        help="answer a batch of reachability queries in one coalesced call",
    )
    qb.add_argument("graph", help="edge-list file")
    qb.add_argument(
        "pairs",
        help="file of 's t' query pairs (one per line, '#' comments; "
        "'-' reads stdin)",
    )
    qb.add_argument(
        "--strategy",
        choices=["auto", "scalar", "bitparallel"],
        default="auto",
        help="batch execution path: bit-parallel kernel waves, the "
        "per-query scalar pipeline, or the cost-model auto cutover",
    )
    qb.add_argument("--workers", type=int, default=4)
    qb.add_argument("--supportive", type=int, default=4)
    qb.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="whole-batch deadline; expired work degrades per query",
    )
    qb.add_argument(
        "--kernels",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="allow the bit-parallel CSR path (--no-kernels forces the "
        "scalar pipeline)",
    )
    qb.add_argument("--seed", type=int, default=0)
    qb.add_argument(
        "--quiet", action="store_true", help="print only the summary line"
    )
    qb.set_defaults(func=cmd_query_batch)

    s = sub.add_parser("stats", help="print basic statistics of a graph")
    s.add_argument("graph", help="edge-list file")
    s.add_argument(
        "--exact-clustering",
        action="store_true",
        help="compute the exact clustering coefficient (O(sum d^2))",
    )
    s.set_defaults(func=cmd_stats)

    g = sub.add_parser("generate", help="generate a synthetic graph")
    g.add_argument(
        "family",
        choices=["sbm", "pa", "star", "er", "rmat"],
        help="generator family",
    )
    g.add_argument("output", help="output edge-list file")
    g.add_argument("--block-size", type=int, default=500)
    g.add_argument("--degree", type=float, default=5.0)
    g.add_argument("--n", type=int, default=1000)
    g.add_argument("--out-degree", type=int, default=3)
    g.add_argument("--hubs", type=int, default=8)
    g.add_argument("--scale", type=int, default=10, help="rmat: n = 2**scale")
    g.add_argument("--seed", type=int, default=0)
    g.set_defaults(func=cmd_generate)

    c = sub.add_parser(
        "compare", help="replay a dataset analog through every method"
    )
    c.add_argument("dataset", choices=DATASET_ORDER)
    c.add_argument("--max-updates", type=int, default=250)
    c.add_argument("--batches", type=int, default=4)
    c.add_argument("--queries-per-batch", type=int, default=25)
    c.set_defaults(func=cmd_compare)

    l = sub.add_parser(
        "calibrate-lambda",
        help="measure the guided-push : BiBFS per-operation time ratio",
    )
    l.add_argument("--repetitions", type=int, default=5)
    l.add_argument(
        "--push-kernels",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="time the array-state push drain instead of the dict twin "
        "(requires numpy)",
    )
    l.set_defaults(func=cmd_calibrate)

    r = sub.add_parser(
        "report", help="render saved benchmark records as text tables"
    )
    r.add_argument(
        "--results-dir", default="results", help="directory of *.json records"
    )
    r.add_argument(
        "--markdown", action="store_true", help="emit GitHub-flavoured tables"
    )
    r.set_defaults(func=cmd_report)

    sb = sub.add_parser(
        "serve-bench",
        help="closed-loop throughput run of the query-serving engine",
    )
    sb.add_argument("graph", help="edge-list file with the initial snapshot")
    sb.add_argument(
        "--workload",
        help="mixed workload file (Q|I|D u v lines); generated when omitted",
    )
    sb.add_argument(
        "--save-workload", help="write the (generated) workload to this file"
    )
    sb.add_argument("--ops", type=int, default=2000, help="operations to generate")
    sb.add_argument("--query-ratio", type=float, default=0.9)
    sb.add_argument("--skew", type=float, default=1.0, help="endpoint zipf skew")
    sb.add_argument(
        "--pair-pool",
        type=int,
        default=None,
        help="repeat whole query pairs from a hot pool of this size",
    )
    sb.add_argument("--workers", type=int, default=4)
    sb.add_argument("--cache-size", type=int, default=4096)
    sb.add_argument("--supportive", type=int, default=4)
    sb.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-query deadline; expired queries degrade instead of blocking",
    )
    sb.add_argument(
        "--kernels",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="serve reads from per-epoch frozen CSR snapshots via the "
        "vectorized kernels (--no-kernels forces the dict path)",
    )
    sb.add_argument(
        "--push-kernels",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the IFCA guided phase on the array-state push kernels "
        "(--no-push-kernels keeps only the BiBFS read-path kernels)",
    )
    sb.add_argument(
        "--labels",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="prefilter queries through the incremental DL/BL label tier "
        "(--no-labels drops the tier; no-op without numpy)",
    )
    sb.add_argument(
        "--label-bits",
        type=int,
        default=256,
        help="label width per side in bits (multiple of 64; word 0 is "
        "the landmark word, the rest bloom words)",
    )
    sb.add_argument(
        "--freeze-threshold",
        type=int,
        default=2,
        help="engine-stage queries one graph version must attract before "
        "its CSR snapshot is frozen",
    )
    sb.add_argument("--seed", type=int, default=0)
    sb.add_argument(
        "--journal",
        default=None,
        help="append every applied update to this write-ahead journal "
        "(JSONL); a crashed run is recoverable with "
        "ReachabilityService.recover()",
    )
    sb.add_argument(
        "--max-pending",
        type=int,
        default=0,
        help="admission control: shed queries once this many are pending "
        "(0 = unbounded)",
    )
    sb.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="coalesce consecutive queries into query_batch calls of up "
        "to this many pairs (also bursts the generated workload); "
        "omitted = per-query replay",
    )
    sb.add_argument(
        "--batch-strategy",
        choices=["auto", "scalar", "bitparallel"],
        default="auto",
        help="execution path for batched replay (see query-batch)",
    )
    sb.add_argument(
        "--shards",
        type=int,
        default=0,
        help="deploy this many shared-memory shard-worker processes and "
        "route batched queries through the scatter–gather router "
        "(0/1 = single-process serving)",
    )
    sb.add_argument(
        "--shard-locality",
        type=float,
        default=0.0,
        help="probability a generated query's endpoints are redrawn into "
        "the same shard (shard-skew knob; needs --shards >= 2 and a "
        "generated workload)",
    )
    sb.add_argument(
        "--shard-pipeline",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="schedule shard-worker calls through the out-of-order "
        "pipelined reactor (--no-shard-pipeline reverts to "
        "round-synchronous scatter–gather)",
    )
    sb.add_argument(
        "--shard-inflight-window",
        type=int,
        default=4,
        help="max tagged requests in flight per shard worker before the "
        "scheduler applies backpressure (pipelined mode)",
    )
    sb.add_argument(
        "--shard-route-scalar",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="let point queries consult a deployed shard fleet (rule "
        "ladder, then a 1-lane scheduler ride) before the local engine",
    )
    sb.set_defaults(func=cmd_serve_bench)

    sv = sub.add_parser(
        "serve",
        help="serve a graph over the wire protocol (asyncio server)",
    )
    sv.add_argument("graph", help="edge-list file with the initial snapshot")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument(
        "--port", type=int, default=7420, help="bind port (0 = ephemeral)"
    )
    sv.add_argument("--workers", type=int, default=4)
    sv.add_argument("--supportive", type=int, default=4)
    sv.add_argument(
        "--journal",
        default=None,
        help="write-ahead journal (JSONL); required for replicas to "
        "subscribe",
    )
    sv.add_argument(
        "--max-pending",
        type=int,
        default=0,
        help="shed wire queries once this many are queued or executing "
        "(0 = unbounded); shed responses carry retry_after_ms",
    )
    sv.add_argument(
        "--coalesce",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="gather concurrent wire queries into query_batch waves "
        "(--no-coalesce serves each query with its own worker call)",
    )
    sv.add_argument("--max-wave", type=int, default=256)
    sv.add_argument(
        "--batch-strategy",
        choices=["auto", "scalar", "bitparallel"],
        default="auto",
    )
    sv.add_argument(
        "--kernels", action=argparse.BooleanOptionalAction, default=True
    )
    sv.add_argument(
        "--shards",
        type=int,
        default=0,
        help="deploy this many shared-memory shard-worker processes "
        "behind the coalesced batch path (0/1 = single-process)",
    )
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="exit after this long (scripted smoke runs); default runs "
        "until interrupted",
    )
    sv.set_defaults(func=cmd_serve)

    rp = sub.add_parser(
        "replica",
        help="follow a primary's journal stream and serve reads at the "
        "replication watermark",
    )
    rp.add_argument(
        "primary", help="primary address as HOST:PORT (e.g. 127.0.0.1:7420)"
    )
    rp.add_argument(
        "journal", help="the replica's local write-ahead journal (JSONL)"
    )
    rp.add_argument("--host", default="127.0.0.1")
    rp.add_argument(
        "--port",
        type=int,
        default=7421,
        help="serve read-only queries here (0 = ephemeral)",
    )
    rp.add_argument("--workers", type=int, default=4)
    rp.add_argument("--supportive", type=int, default=4)
    rp.add_argument(
        "--kernels", action=argparse.BooleanOptionalAction, default=True
    )
    rp.add_argument("--seed", type=int, default=0)
    rp.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="exit after this long (scripted smoke runs)",
    )
    rp.set_defaults(func=cmd_replica)

    ch = sub.add_parser(
        "chaos",
        help="replay a mixed workload under a named fault plan and "
        "report what survived",
    )
    ch.add_argument(
        "graph", nargs="?", help="edge-list file with the initial snapshot"
    )
    ch.add_argument(
        "--plan",
        default="mixed-chaos",
        help="fault plan name (see --list-plans)",
    )
    ch.add_argument(
        "--list-plans", action="store_true", help="list fault plans and exit"
    )
    ch.add_argument("--ops", type=int, default=2000)
    ch.add_argument("--query-ratio", type=float, default=0.8)
    ch.add_argument("--workers", type=int, default=4)
    ch.add_argument("--supportive", type=int, default=0)
    ch.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-query cooperative deadline",
    )
    ch.add_argument(
        "--edge-budget",
        type=int,
        default=None,
        help="per-query engine edge-access ceiling",
    )
    ch.add_argument("--max-pending", type=int, default=64)
    ch.add_argument(
        "--journal", default=None, help="write-ahead journal path (JSONL)"
    )
    ch.add_argument(
        "--oracle",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="verify final-version confident answers against a BFS oracle",
    )
    ch.add_argument("--seed", type=int, default=0)
    ch.set_defaults(func=cmd_chaos)

    cn = sub.add_parser(
        "chaos-net",
        help="network chaos harness: kill -9 the primary under the "
        "supervisor, SIGKILL/SIGSTOP shard workers, partition a "
        "replica, inject torn frames — all checked against a BFS oracle",
    )
    cn.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        default=None,
        metavar="NAME",
        help="scenario to run (repeatable; default: all). One of: "
        "kill-primary, worker-respawn, stop-worker, partition-replica, "
        "torn-frames",
    )
    cn.add_argument(
        "--artifacts",
        default="results/chaos_net_artifacts",
        help="directory for post-mortem artifacts (journals, supervisor "
        "log, primary stderr)",
    )
    cn.add_argument(
        "--out",
        default=None,
        help="also write the results record JSON here "
        "(e.g. results/ext_chaos_net.json)",
    )
    cn.add_argument("--heartbeat-interval", type=float, default=0.05)
    cn.add_argument("--heartbeat-misses", type=int, default=3)
    cn.add_argument("--ops", type=int, default=160)
    cn.add_argument("--checks", type=int, default=120)
    cn.add_argument(
        "--shard-pipeline",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run the sharded scenarios (worker-respawn, stop-worker) "
        "with the pipelined scheduler (--no-shard-pipeline exercises "
        "the round-synchronous path)",
    )
    cn.add_argument("--seed", type=int, default=0)
    cn.set_defaults(func=cmd_chaos_net)

    rep = sub.add_parser(
        "reproduce",
        help="run the paper's full evaluation and save all records",
    )
    rep.add_argument("--out", default="results", help="output directory")
    rep.add_argument(
        "--quick", action="store_true", help="smaller workloads (smoke run)"
    )
    rep.add_argument(
        "--quiet", action="store_true", help="suppress per-experiment tables"
    )
    rep.set_defaults(func=cmd_reproduce)

    return parser


def cmd_query(args: argparse.Namespace) -> int:
    from repro.core.params import IFCAParams
    from repro.graph import kernels

    graph = read_edge_list(args.graph)
    use_kernels = args.kernels and kernels.kernels_enabled()
    if use_kernels:
        graph.csr()  # freeze once so every kernel path can engage
    if args.method == "ifca":
        method = IFCAMethod(graph, IFCAParams(use_kernels=use_kernels))
    else:
        method = METHOD_FACTORIES[args.method](graph)
    reachable = method.query(args.source, args.target)
    print(
        f"{args.source} -> {args.target}: "
        f"{'reachable' if reachable else 'not reachable'} "
        f"(method={method.name}, exact={method.exact})"
    )
    return 0 if reachable else 1


def cmd_query_batch(args: argparse.Namespace) -> int:
    from repro.service import ReachabilityService

    graph = read_edge_list(args.graph)
    pairs: List[tuple] = []
    handle = sys.stdin if args.pairs == "-" else open(args.pairs, "r")
    try:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) != 2:
                print(
                    f"error: {args.pairs}:{lineno}: expected 's t', got {line!r}",
                    file=sys.stderr,
                )
                return 2
            pairs.append((int(parts[0]), int(parts[1])))
    finally:
        if handle is not sys.stdin:
            handle.close()
    if not pairs:
        print("error: no query pairs given", file=sys.stderr)
        return 2

    deadline_s = args.deadline_ms / 1000.0 if args.deadline_ms else None
    with ReachabilityService(
        graph,
        num_workers=args.workers,
        num_supportive=args.supportive,
        seed=args.seed,
        deadline_s=deadline_s,
        use_kernels=args.kernels,
    ) as service:
        outcomes = service.query_batch(pairs, strategy=args.strategy)
        if not args.quiet:
            for outcome in outcomes:
                verdict = "reachable" if outcome.answer else "not reachable"
                print(
                    f"{outcome.source} -> {outcome.target}: {verdict} "
                    f"(via={outcome.via}"
                    + (f", {outcome.detail}" if outcome.detail else "")
                    + ")"
                )
        counters = service.stats()["counters"]
        derived = service.stats()["derived"]
        positives = sum(1 for o in outcomes if o.answer)
        print(
            f"{len(outcomes)} queries ({positives} reachable) via "
            f"strategy={args.strategy}: "
            f"{counters.get('bit_waves', 0)} bit waves, "
            f"{counters.get('batch_prefilter_hits', 0)} prefilter hits, "
            f"{counters.get('batched_dedup', 0)} deduped, "
            f"word occupancy {derived.get('word_occupancy', 0.0):.1%}"
        )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.graph.stats import summarize

    graph = read_edge_list(args.graph)
    summary = summarize(graph, exact_clustering=args.exact_clustering)
    category = (
        "discernible communities"
        if summary.has_discernible_communities
        else "no discernible communities"
    )
    print(f"vertices:              {summary.num_vertices}")
    print(f"edges:                 {summary.num_edges}")
    print(f"average degree:        {summary.average_degree:.3f}")
    print(f"max out/in degree:     {summary.max_out_degree} / {summary.max_in_degree}")
    print(f"SCCs (largest):        {summary.num_sccs} ({summary.largest_scc})")
    print(f"clustering coeff.:     {summary.clustering_coefficient:.5f} ({category})")
    print(f"degree tail exponent:  {summary.degree_tail_exponent:.2f}")
    print(f"reachable pairs:       {summary.reachable_pair_fraction:.1%}")
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    if args.family == "sbm":
        graph = two_block_sbm(args.block_size, args.degree, seed=args.seed)
    elif args.family == "pa":
        graph = preferential_attachment_graph(
            args.n, args.out_degree, seed=args.seed
        )
    elif args.family == "star":
        graph = star_heavy_graph(args.n, num_hubs=args.hubs, seed=args.seed)
    elif args.family == "rmat":
        graph = rmat_graph(args.scale, args.out_degree, seed=args.seed)
    else:
        graph = erdos_renyi_graph(args.n, args.degree, seed=args.seed)
    write_edge_list(graph, args.output)
    print(
        f"wrote {args.family} graph (n={graph.num_vertices}, "
        f"m={graph.num_edges}) to {args.output}"
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.comparison import run_comparison_on_analog

    rows = run_comparison_on_analog(
        args.dataset,
        num_batches=args.batches,
        queries_per_batch=args.queries_per_batch,
        max_updates=args.max_updates,
    )
    print(
        format_table(
            rows,
            columns=[
                "method",
                "avg_update_ms",
                "avg_query_ms",
                "avg_pos_query_ms",
                "avg_neg_query_ms",
                "accuracy",
            ],
            title=f"{args.dataset} analog",
        )
    )
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.service import ReachabilityService, format_stats_table
    from repro.service.driver import replay_workload
    from repro.workloads.mixed import (
        generate_mixed_workload,
        load_workload,
        save_workload,
        workload_mix,
    )

    graph = read_edge_list(args.graph)
    shard_of = None
    if args.shards >= 2 and args.shard_locality > 0.0 and not args.workload:
        from repro.shard import partition_graph

        # Pure analysis (no worker fleet): the same partition the serving
        # router will deploy, so the locality knob biases toward genuine
        # intra-shard traffic.
        shard_of = partition_graph(graph, args.shards).shard_of
    if args.workload:
        ops = load_workload(args.workload)
    else:
        ops = generate_mixed_workload(
            graph,
            args.ops,
            query_ratio=args.query_ratio,
            skew=args.skew,
            pair_pool=args.pair_pool,
            batch_size=args.batch_size,
            shard_of=shard_of,
            shard_locality=args.shard_locality,
            seed=args.seed,
        )
    if args.save_workload:
        save_workload(ops, args.save_workload)
    queries, inserts, deletes = workload_mix(ops)
    print(
        f"replaying {len(ops)} ops ({queries} queries, {inserts} inserts, "
        f"{deletes} deletes) on n={graph.num_vertices} m={graph.num_edges} "
        f"with {args.workers} workers "
        f"(csr kernels {'on' if args.kernels else 'off'}, "
        f"labels {'on' if args.labels else 'off'}, "
        f"shards={args.shards or 'off'})"
    )
    deadline_s = args.deadline_ms / 1000.0 if args.deadline_ms else None
    with ReachabilityService(
        graph,
        num_workers=args.workers,
        cache_capacity=args.cache_size,
        num_supportive=args.supportive,
        seed=args.seed,
        deadline_s=deadline_s,
        use_kernels=args.kernels,
        push_kernels=args.push_kernels,
        use_labels=args.labels,
        label_bits=args.label_bits,
        csr_freeze_threshold=args.freeze_threshold,
        journal=args.journal,
        max_pending=args.max_pending,
        shards=args.shards,
        shard_pipeline=args.shard_pipeline,
        shard_inflight_window=args.shard_inflight_window,
        shard_route_scalar=args.shard_route_scalar,
    ) as service:
        result = replay_workload(
            service,
            ops,
            deadline_s=deadline_s,
            batch_size=args.batch_size,
            batch_strategy=args.batch_strategy,
        )
        row = result.summary_row()
        print(
            f"\n{row['qps']:.0f} queries/s over {result.wall_seconds:.3f}s wall "
            f"({result.ops_per_second:.0f} ops/s); "
            f"{row['no_search_rate']:.1%} answered without full search\n"
        )
        print(format_stats_table(service.stats()))
        if args.journal:
            journal = service.journal
            print(
                f"\njournal: {journal.records_written} records "
                f"({journal.sync_count} fsyncs) -> {args.journal}"
            )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.net.server import ReachabilityServer
    from repro.service import ReachabilityService

    graph = read_edge_list(args.graph)

    async def run() -> int:
        with ReachabilityService(
            graph,
            num_workers=args.workers,
            num_supportive=args.supportive,
            seed=args.seed,
            use_kernels=args.kernels,
            journal=args.journal,
            max_pending=args.max_pending,
            shards=args.shards,
        ) as service:
            server = ReachabilityServer(
                service,
                args.host,
                args.port,
                coalesce=args.coalesce,
                max_wave=args.max_wave,
                batch_strategy=args.batch_strategy,
            )
            await server.start()
            print(
                f"serving n={graph.num_vertices} m={graph.num_edges} on "
                f"{server.host}:{server.port} "
                f"(coalesce={'on' if args.coalesce else 'off'}, "
                f"journal={args.journal or 'none'}, "
                f"shards={args.shards or 'off'})",
                flush=True,
            )
            try:
                if args.max_seconds is not None:
                    await asyncio.sleep(args.max_seconds)
                else:
                    await asyncio.Event().wait()
            finally:
                await server.stop()
            counters = server.counters
            print(
                f"served {counters.get('net_queries', 0)} queries over "
                f"{counters.get('net_connections', 0)} connections "
                f"({counters.get('net_coalesced_waves', 0)} coalesced waves, "
                f"{counters.get('net_shed', 0)} shed, "
                f"{counters.get('net_journal_shipped', 0)} journal records "
                f"shipped)"
            )
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def cmd_replica(args: argparse.Namespace) -> int:
    import asyncio

    from repro.net.replica import ReplicaNode

    host, _, port = args.primary.rpartition(":")
    if not host or not port.isdigit():
        print(
            f"error: primary must be HOST:PORT, got {args.primary!r}",
            file=sys.stderr,
        )
        return 2

    async def run() -> int:
        node = ReplicaNode(
            host,
            int(port),
            args.journal,
            service_kwargs={
                "num_workers": args.workers,
                "num_supportive": args.supportive,
                "seed": args.seed,
                "use_kernels": args.kernels,
            },
        )
        server = await node.serve(args.host, args.port)
        print(
            f"replica of {host}:{port} serving reads on "
            f"{server.host}:{server.port} (watermark {node.watermark})",
            flush=True,
        )
        runner = asyncio.create_task(node.run())
        try:
            if args.max_seconds is not None:
                await asyncio.sleep(args.max_seconds)
            else:
                await asyncio.Event().wait()
        finally:
            node.stop()
            await runner
            await node.close()
        print(
            f"applied {node.records_applied} records "
            f"({node.snapshots_loaded} snapshot bootstraps, "
            f"{node.reconnects} connects); final watermark {node.watermark}"
        )
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.service import (
        NAMED_PLANS,
        ReachabilityService,
        plan_by_name,
        replay_workload,
    )
    from repro.workloads.mixed import generate_mixed_workload, workload_mix

    if args.list_plans:
        for name in sorted(NAMED_PLANS):
            plan = NAMED_PLANS[name]
            specs = ", ".join(
                f"{s.stage}:{s.kind}@{s.probability:g}" for s in plan.specs
            ) or "(no faults)"
            print(f"{name:<14} {specs}")
        return 0
    if not args.graph:
        print("error: a graph file is required unless --list-plans", file=sys.stderr)
        return 2

    graph = read_edge_list(args.graph)
    plan = plan_by_name(args.plan, seed=args.seed)
    ops = generate_mixed_workload(
        graph, args.ops, query_ratio=args.query_ratio, seed=args.seed
    )
    queries, inserts, deletes = workload_mix(ops)
    deadline_s = args.deadline_ms / 1000.0 if args.deadline_ms else None
    print(
        f"chaos plan {plan.name!r} over {len(ops)} ops "
        f"({queries} queries, {inserts} inserts, {deletes} deletes) "
        f"on n={graph.num_vertices} m={graph.num_edges}"
    )
    with ReachabilityService(
        graph,
        num_workers=args.workers,
        num_supportive=args.supportive,
        seed=args.seed,
        deadline_s=deadline_s,
        engine_edge_budget=args.edge_budget,
        journal=args.journal,
        fault_plan=plan,
        max_pending=args.max_pending,
    ) as service:
        result = replay_workload(service, ops, deadline_s=deadline_s)
        snapshot = service.stats()
        counters = snapshot["counters"]
        fired = snapshot.get("faults_fired", {})
        final_version = service.graph.version
        mismatches = checked = 0
        if args.oracle:
            from repro.graph.traversal import is_reachable_bfs

            for outcome in result.outcomes:
                if outcome.confident and outcome.version == final_version:
                    checked += 1
                    expected = is_reachable_bfs(
                        service.graph, outcome.source, outcome.target
                    )
                    if expected != outcome.answer:
                        mismatches += 1

    answered = len(result.outcomes)
    confident = sum(1 for o in result.outcomes if o.confident)
    print("\nsurvival report")
    print(f"  queries answered        {answered:>8} / {result.num_queries}")
    print(f"  confident               {confident:>8} ({confident / answered:.1%})"
          if answered else "  confident                      0")
    print(f"  shed                    {result.shed_queries:>8}")
    print(f"  degraded                {counters.get('degraded', 0):>8}")
    print(f"  engine fallbacks        {counters.get('engine_fallbacks', 0):>8}")
    print(f"  engine failures         {counters.get('engine_failures', 0):>8}")
    print(f"  breaker trips           {counters.get('breaker_trips', 0):>8}")
    print(f"  failed updates          {result.failed_updates:>8} / {result.num_updates}")
    print(f"  journal errors          {counters.get('journal_errors', 0):>8}")
    stage_errors = {
        k[len("stage_errors_"):]: v
        for k, v in counters.items()
        if k.startswith("stage_errors_")
    }
    if stage_errors:
        detail = ", ".join(f"{k}={v}" for k, v in sorted(stage_errors.items()))
        print(f"  stage errors            {detail}")
    if fired:
        detail = ", ".join(f"{k}={v}" for k, v in sorted(fired.items()))
        print(f"  faults fired            {detail}")
    if args.oracle:
        print(f"  oracle checked          {checked:>8} (final-version confident answers)")
        print(f"  oracle mismatches       {mismatches:>8}")
    survived = answered == result.num_queries and mismatches == 0
    print(f"\n{'SURVIVED' if survived else 'FAILED'}: every query answered"
          f"{' and every checked confident answer exact' if args.oracle else ''}"
          if survived else "\nFAILED: see report above")
    return 0 if survived else 1


def cmd_chaos_net(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.net.chaos import run_chaos_net

    rows, ok = run_chaos_net(
        args.scenarios,
        workdir=Path(args.artifacts),
        out=Path(args.out) if args.out else None,
        heartbeat_interval_s=args.heartbeat_interval,
        heartbeat_misses=args.heartbeat_misses,
        ops=args.ops,
        checks=args.checks,
        shard_pipeline=args.shard_pipeline,
        seed=args.seed,
    )
    ran = sum(1 for r in rows if "skipped" not in r)
    skipped = len(rows) - ran
    print(
        f"\n{'SURVIVED' if ok else 'FAILED'}: {ran} scenario(s) ran"
        + (f", {skipped} skipped" if skipped else "")
        + (", zero oracle mismatches" if ok else " — see rows above")
    )
    return 0 if ok else 1


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_report

    print(render_report(args.results_dir, markdown=args.markdown))
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments.reproduce import run_all

    records = run_all(
        out_dir=args.out,
        quick=args.quick,
        echo=None if args.quiet else print,
    )
    print(f"wrote {len(records)} experiment records to {args.out}/")
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.experiments.lambda_calibration import calibrate_lambda

    ratio = calibrate_lambda(
        repetitions=args.repetitions, push_kernels=args.push_kernels
    )
    path = "array push kernel" if args.push_kernels else "dict guided push"
    print(f"lambda ({path} op time / BiBFS op time): {ratio:.2f}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
