"""Dynamic-graph workload substrate: event streams, expiry, replay drivers."""

from repro.dynamic.events import EdgeEvent, TemporalEdgeStream
from repro.dynamic.expiry import apply_expiry_rule
from repro.dynamic.driver import DynamicWorkload, ReplayResult, replay

__all__ = [
    "EdgeEvent",
    "TemporalEdgeStream",
    "apply_expiry_rule",
    "DynamicWorkload",
    "ReplayResult",
    "replay",
]
