"""The dynamic replay driver: the paper's update/query benchmark loop.

Sec. VI's protocol: split the stream's time span into intervals; after each
interval's batch of updates, issue a batch of queries on the current
snapshot. The driver times updates and queries separately per method,
tracks accuracy against a BFS oracle on a shadow graph, and reports
per-sign (positive/negative) query timings — everything Fig. 6, Tab. III,
and the QpU sweeps need.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.baselines.base import ReachabilityMethod
from repro.dynamic.events import TemporalEdgeStream, apply_event
from repro.graph.digraph import DynamicDiGraph
from repro.workloads.queries import generate_queries, label_queries

MethodFactory = Callable[[DynamicDiGraph], ReachabilityMethod]


@dataclass
class DynamicWorkload:
    """A reusable description of one replay: initial graph + stream +
    query-batch parameters."""

    initial: DynamicDiGraph
    stream: TemporalEdgeStream
    num_batches: int = 10
    queries_per_batch: int = 50
    seed: int = 0


@dataclass
class ReplayResult:
    """Aggregated timings and accuracy for one method over one replay."""

    method_name: str
    num_updates: int = 0
    num_queries: int = 0
    num_positive: int = 0
    num_negative: int = 0
    total_update_time: float = 0.0
    total_query_time: float = 0.0
    positive_query_time: float = 0.0
    negative_query_time: float = 0.0
    num_correct: int = 0
    skipped_deletions: int = 0
    per_batch_query_time: List[float] = field(default_factory=list)

    @property
    def avg_update_time(self) -> float:
        return self.total_update_time / self.num_updates if self.num_updates else 0.0

    @property
    def avg_query_time(self) -> float:
        return self.total_query_time / self.num_queries if self.num_queries else 0.0

    @property
    def avg_positive_query_time(self) -> float:
        return self.positive_query_time / self.num_positive if self.num_positive else 0.0

    @property
    def avg_negative_query_time(self) -> float:
        return self.negative_query_time / self.num_negative if self.num_negative else 0.0

    @property
    def accuracy(self) -> float:
        return self.num_correct / self.num_queries if self.num_queries else 1.0

    def total_time(self, queries_per_update: float) -> float:
        """The Fig. 8/9 quantity: avg time of one update plus ``QpU`` queries."""
        return self.avg_update_time + queries_per_update * self.avg_query_time


def replay(
    factory: MethodFactory,
    workload: DynamicWorkload,
    method_name: Optional[str] = None,
    clock: Callable[[], float] = time.perf_counter,
) -> ReplayResult:
    """Run one method through the update/query protocol.

    The method gets its own copy of the initial snapshot (index built at
    construction, untimed, as the paper does for the initial state); a
    shadow copy plus BFS provides ground truth. Methods that cannot delete
    (DBL) skip deletions, which is counted in ``skipped_deletions`` —
    mirroring why the paper excludes DBL from the main comparison.
    """
    method_graph = workload.initial.copy()
    method = factory(method_graph)
    shadow = workload.initial.copy()
    result = ReplayResult(method_name=method_name or method.name)

    batches = workload.stream.batches(workload.num_batches)
    for batch_index, batch in enumerate(batches):
        # -- update phase -------------------------------------------------
        for event in batch:
            apply_event(shadow, event)
            if not event.insert and not method.supports_deletions:
                result.skipped_deletions += 1
                continue
            start = clock()
            if event.insert:
                method.insert_edge(event.source, event.target)
            else:
                method.delete_edge(event.source, event.target)
            result.total_update_time += clock() - start
            result.num_updates += 1
        # -- query phase ---------------------------------------------------
        queries = generate_queries(
            shadow,
            workload.queries_per_batch,
            seed=workload.seed * 7919 + batch_index,
        )
        labeled = label_queries(shadow, queries)
        batch_time = 0.0
        for (s, t), expected in zip(labeled.queries, labeled.ground_truth):
            start = clock()
            answer = method.query(s, t)
            elapsed = clock() - start
            batch_time += elapsed
            result.total_query_time += elapsed
            result.num_queries += 1
            if expected:
                result.num_positive += 1
                result.positive_query_time += elapsed
            else:
                result.num_negative += 1
                result.negative_query_time += elapsed
            if answer == expected:
                result.num_correct += 1
        result.per_batch_query_time.append(batch_time)
    return result
