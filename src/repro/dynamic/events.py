"""Temporal edge events and event streams.

A dynamic graph in this library is an initial snapshot plus a time-ordered
stream of :class:`EdgeEvent` (insertions and deletions), mirroring the
paper's workload construction (Sec. VI, "Datasets"): edges with the minimum
timestamp form the initial state and the rest are updates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.graph.digraph import DynamicDiGraph


@dataclass(frozen=True, order=True)
class EdgeEvent:
    """One timestamped edge update. ``insert=False`` means a deletion."""

    time: float
    source: int = field(compare=False)
    target: int = field(compare=False)
    insert: bool = field(default=True, compare=False)

    @property
    def edge(self) -> Tuple[int, int]:
        return (self.source, self.target)


class TemporalEdgeStream:
    """A time-sorted sequence of edge events with batching helpers."""

    def __init__(self, events: Iterable[EdgeEvent]) -> None:
        self.events: List[EdgeEvent] = sorted(events, key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[EdgeEvent]:
        return iter(self.events)

    @property
    def num_insertions(self) -> int:
        return sum(1 for e in self.events if e.insert)

    @property
    def num_deletions(self) -> int:
        return sum(1 for e in self.events if not e.insert)

    @property
    def time_span(self) -> Tuple[float, float]:
        """(min, max) timestamps; (0.0, 0.0) when empty."""
        if not self.events:
            return (0.0, 0.0)
        return (self.events[0].time, self.events[-1].time)

    def batches(self, num_intervals: int) -> List[List[EdgeEvent]]:
        """Split the time span evenly into ``num_intervals`` batches.

        This matches the paper's query workload construction: the time span
        is split into equal intervals, each interval's updates form a batch,
        and a batch of queries is issued after each batch of updates.
        Events landing exactly on a boundary go to the earlier batch; the
        last batch takes everything remaining.
        """
        if num_intervals <= 0:
            raise ValueError("num_intervals must be positive")
        if not self.events:
            return [[] for _ in range(num_intervals)]
        t_min, t_max = self.time_span
        width = (t_max - t_min) / num_intervals
        batches: List[List[EdgeEvent]] = [[] for _ in range(num_intervals)]
        if width == 0:
            batches[-1] = list(self.events)
            return batches
        for event in self.events:
            index = int((event.time - t_min) / width)
            if index >= num_intervals:
                index = num_intervals - 1
            batches[index].append(event)
        return batches


def initial_snapshot_split(
    events: Iterable[EdgeEvent],
) -> Tuple[DynamicDiGraph, TemporalEdgeStream]:
    """Split a raw event list into (initial graph, remaining stream).

    Following the paper: "The edges with the minimum timestamp appear in the
    initial state, and all the rest are edge inserts."
    """
    ordered = sorted(events, key=lambda e: e.time)
    graph = DynamicDiGraph()
    if not ordered:
        return graph, TemporalEdgeStream([])
    t_min = ordered[0].time
    rest: List[EdgeEvent] = []
    for event in ordered:
        if event.time == t_min and event.insert:
            graph.add_edge(event.source, event.target)
        else:
            rest.append(event)
    return graph, TemporalEdgeStream(rest)


def apply_event(graph: DynamicDiGraph, event: EdgeEvent) -> bool:
    """Apply one event to a plain graph; returns whether it changed anything."""
    if event.insert:
        return graph.add_edge(event.source, event.target)
    return graph.remove_edge(event.source, event.target)


def materialize(
    initial: DynamicDiGraph,
    stream: TemporalEdgeStream,
    until: Optional[float] = None,
) -> DynamicDiGraph:
    """The snapshot after applying all events with ``time <= until``."""
    graph = initial.copy()
    for event in stream:
        if until is not None and event.time > until:
            break
        apply_event(graph, event)
    return graph
