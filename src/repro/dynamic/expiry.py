"""The paper's T/10 edge expiry rule.

For datasets without explicit deletions the paper synthesizes them:
"we suppose that each edge expires T/10 after its insertion, where T is the
span between the minimum and maximum timestamps" (Sec. VI). This module
turns an insert-only stream into an insert+delete stream under that rule.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Tuple

from repro.dynamic.events import EdgeEvent, TemporalEdgeStream

Edge = Tuple[int, int]


def apply_expiry_rule(
    events: Iterable[EdgeEvent], fraction: float = 0.1
) -> TemporalEdgeStream:
    """Add a deletion ``fraction * T`` after each insertion.

    Expiry deletions are interleaved at their correct position in time, so
    an edge re-inserted after its expiry gets a fresh lifetime. Explicit
    deletions already present in the input disarm the pending expiry for
    that edge. Expiries falling beyond the maximum input timestamp are
    dropped (a finite trace never replays them).
    """
    if not 0 < fraction <= 1:
        raise ValueError("fraction must be in (0, 1]")
    ordered = sorted(events, key=lambda e: e.time)
    if not ordered:
        return TemporalEdgeStream([])
    t_min = ordered[0].time
    t_max = ordered[-1].time
    lifetime = (t_max - t_min) * fraction
    if lifetime <= 0:
        # Degenerate span: a zero lifetime would delete every edge the
        # instant it appears, which no finite trace intends.
        return TemporalEdgeStream(ordered)
    out: List[EdgeEvent] = []
    # Min-heap of (expiry_time, edge); armed_at[edge] invalidates stale
    # entries when an edge is re-inserted or explicitly deleted.
    heap: List[Tuple[float, float, Edge]] = []
    armed_at: Dict[Edge, float] = {}

    def drain(until: float) -> None:
        while heap and heap[0][0] <= until:
            expiry, inserted_at, edge = heapq.heappop(heap)
            if armed_at.get(edge) != inserted_at:
                continue  # disarmed by a later insert or explicit delete
            del armed_at[edge]
            out.append(
                EdgeEvent(time=expiry, source=edge[0], target=edge[1], insert=False)
            )

    for event in ordered:
        drain(event.time)
        out.append(event)
        if event.insert:
            armed_at[event.edge] = event.time
            heapq.heappush(heap, (event.time + lifetime, event.time, event.edge))
        else:
            armed_at.pop(event.edge, None)
    drain(t_max)
    return TemporalEdgeStream(out)
