"""Transitive closure computation via SCC condensation.

The exact all-pairs companion to the per-query engines: condense the
graph, propagate descendant sets over the DAG in reverse topological order
(as Python integer bitsets, so unions are single big-int ORs), and expand
back to vertices. O(n * m / wordsize)-ish — fine for the analog scale, and
the fastest exact oracle available to the test suite and the replay driver
when many queries share one snapshot.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from repro.graph.digraph import DynamicDiGraph
from repro.graph.scc import condensation


class TransitiveClosure:
    """An immutable reachability oracle for one snapshot."""

    def __init__(self, graph: DynamicDiGraph) -> None:
        dag, scc_of, components = condensation(graph)
        self._scc_of = scc_of
        self._components = components
        # Tarjan emits reverse topological order: successors of component
        # ``cid`` always carry smaller ids, so one ascending pass suffices.
        masks: Dict[int, int] = {}
        for cid in range(len(components)):
            mask = 1 << cid
            for succ in dag.out_neighbors(cid):
                mask |= masks[succ]
            masks[cid] = mask
        self._masks = masks

    def is_reachable(self, source: int, target: int) -> bool:
        """Whether ``target`` is reachable from ``source`` (False for
        vertices absent from the snapshot)."""
        cs = self._scc_of.get(source)
        ct = self._scc_of.get(target)
        if cs is None or ct is None:
            return False
        return bool(self._masks[cs] >> ct & 1)

    def reachable_set(self, source: int) -> Set[int]:
        """All vertices reachable from ``source`` (including itself)."""
        cs = self._scc_of.get(source)
        if cs is None:
            return set()
        mask = self._masks[cs]
        out: Set[int] = set()
        cid = 0
        while mask:
            if mask & 1:
                out.update(self._components[cid])
            mask >>= 1
            cid += 1
        return out

    def reachable_count(self, source: int) -> int:
        """|reachable_set(source)| without materializing it."""
        cs = self._scc_of.get(source)
        if cs is None:
            return 0
        mask = self._masks[cs]
        total = 0
        cid = 0
        while mask:
            if mask & 1:
                total += len(self._components[cid])
            mask >>= 1
            cid += 1
        return total

    def num_reachable_pairs(self) -> int:
        """The number of ordered reachable pairs ``(u, v)``, u != v.

        The graph's "positive query mass": with the paper's uniform query
        protocol, ``1 - pairs / (n_s * n_t)`` approximates the negative
        ratio.
        """
        total = 0
        for cid, comp in enumerate(self._components):
            total += len(comp) * (self.reachable_count(comp[0]) - 1)
        return total


def transitive_closure_pairs(
    graph: DynamicDiGraph,
) -> Iterable[Tuple[int, int]]:
    """Yield every ordered reachable pair ``(u, v)`` with ``u != v``."""
    closure = TransitiveClosure(graph)
    for u in graph.vertices():
        for v in closure.reachable_set(u):
            if v != u:
                yield (u, v)
