"""Edge-list I/O in the formats used by SNAP and KONECT.

The paper's datasets come from SNAP (WT) and KONECT (the rest) as plain or
temporal edge lists. These readers let users point the library at the real
files when they have them; the bundled benchmarks use synthetic analogs
instead (see DESIGN.md, substitutions).

Supported line formats (whitespace separated, ``#`` and ``%`` comments):

* ``u v``                    — static edge
* ``u v t``                  — temporal edge (insert at time ``t``)
* ``u v w t``                — KONECT style: weight ``w`` (sign selects
  insert/delete: ``w >= 0`` insert, ``w < 0`` delete) and timestamp ``t``
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Tuple, Union

from repro.dynamic.events import EdgeEvent
from repro.graph.digraph import DynamicDiGraph

PathLike = Union[str, Path]


def _data_lines(handle: TextIO) -> Iterator[List[str]]:
    for raw in handle:
        line = raw.strip()
        if not line or line.startswith(("#", "%")):
            continue
        yield line.replace(",", " ").split()


def read_edge_list(path: PathLike) -> DynamicDiGraph:
    """Read a static directed edge list into a :class:`DynamicDiGraph`."""
    graph = DynamicDiGraph()
    with open(path, "r", encoding="utf-8") as handle:
        for parts in _data_lines(handle):
            u, v = int(parts[0]), int(parts[1])
            graph.add_edge(u, v)
    return graph


def write_edge_list(
    graph: DynamicDiGraph, path: PathLike, atomic: bool = False
) -> None:
    """Write the graph as ``u v`` lines, one edge per line.

    With ``atomic=True`` the file is written to a same-directory temp file,
    fsynced, and renamed into place, so a crash mid-write can never leave a
    truncated edge list behind — journal checkpoints
    (:meth:`repro.graph.journal.UpdateJournal.checkpoint`) rely on this.
    """
    target = Path(path)
    dest = (
        target.with_name(target.name + ".tmp") if atomic else target
    )
    with open(dest, "w", encoding="utf-8") as handle:
        handle.write(f"# n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
        if atomic:
            handle.flush()
            os.fsync(handle.fileno())
    if atomic:
        os.replace(dest, target)


def read_temporal_edge_list(path: PathLike) -> List[EdgeEvent]:
    """Read a temporal edge list into a time-sorted list of edge events.

    Three- and four-column lines are both accepted, as described in the
    module docstring.
    """
    events: List[EdgeEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for parts in _data_lines(handle):
            if len(parts) < 3:
                raise ValueError(
                    "temporal edge list needs at least 3 columns per line"
                )
            u, v = int(parts[0]), int(parts[1])
            if len(parts) == 3:
                timestamp = float(parts[2])
                insert = True
            else:
                weight = float(parts[2])
                timestamp = float(parts[3])
                insert = weight >= 0
            events.append(
                EdgeEvent(time=timestamp, source=u, target=v, insert=insert)
            )
    events.sort(key=lambda e: e.time)
    return events


def write_temporal_edge_list(events: Iterable[EdgeEvent], path: PathLike) -> None:
    """Write events in the four-column KONECT style (sign encodes deletes)."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            weight = 1 if event.insert else -1
            handle.write(
                f"{event.source} {event.target} {weight} {event.time}\n"
            )
