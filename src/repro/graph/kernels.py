"""Vectorized CSR traversal kernels for the query hot path.

The dict-of-lists :class:`~repro.graph.digraph.DynamicDiGraph` is the
mutable source of truth, but its hot read loops (frontier BiBFS,
supportive-set construction, sweep scans) pay Python-interpreter cost per
*edge*. These kernels run the same algorithms over a frozen
:class:`~repro.graph.snapshot.CSRSnapshot` with numpy whole-frontier
operations, paying interpreter cost per *layer* instead — the flat-array
adjacency O'Reach demonstrates dominates pointer-chasing representations.

Contract
--------
* Every kernel is answer-equivalent to its dict twin on the same snapshot
  (asserted by ``tests/test_kernels.py`` and the equivalence harness in
  ``benchmarks/bench_kernels.py``); only edge-access *counts* may differ,
  because whole-layer expansion cannot early-exit mid-layer.
* Kernels never mutate the snapshot; all state (visited masks, frontiers)
  is per-call scratch.
* numpy is optional. :data:`HAVE_NUMPY` is ``False`` when the import
  fails — or when ``REPRO_NO_NUMPY`` is set in the environment, which lets
  CI prove the dict fallback stays green on a machine that *does* have
  numpy installed. Callers must consult :func:`kernels_enabled` (or simply
  pass the ``None`` they got from ``DynamicDiGraph.csr``) before
  dispatching here.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Set, Tuple, TYPE_CHECKING

try:
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled via REPRO_NO_NUMPY")
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

if TYPE_CHECKING:  # avoid importing snapshot (and numpy) at runtime
    from repro.graph.snapshot import CSRSnapshot

_enabled = HAVE_NUMPY


def kernels_enabled() -> bool:
    """Whether CSR kernels may be used (numpy present and not switched off)."""
    return _enabled


def set_kernels_enabled(flag: bool) -> bool:
    """Flip the process-wide kernel switch; returns the previous value.

    Forced ``True`` is still capped by numpy availability. Benchmarks and
    the A/B equivalence harness use this to run both paths back to back.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag) and HAVE_NUMPY
    return previous


# ----------------------------------------------------------------------
# Frontier primitives
# ----------------------------------------------------------------------
def _gather(offsets, targets, frontier):
    """Concatenate the adjacency slices of every frontier vertex.

    Equivalent to ``np.concatenate([targets[offsets[v]:offsets[v+1]] for v
    in frontier])`` but with no per-vertex Python iteration: the slice
    starts are repeated per slice length and offset by a running arange.
    """
    starts = offsets[frontier]
    counts = offsets[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return targets[:0]
    cum = np.cumsum(counts)
    idx = np.arange(total, dtype=np.int64) + np.repeat(starts - (cum - counts), counts)
    return targets[idx]


#: Layers at most this large deduplicate with ``np.unique`` (O(f log f));
#: larger ones collapse duplicates through a scratch mask + ``flatnonzero``
#: (O(f + n), no sort), which wins once layers hold thousands of vertices.
_UNIQUE_CUTOFF = 128

#: Gathered layers larger than this are meet-tested in slices so a
#: positive query can stop partway through a huge layer, the same
#: mid-layer early-out the dict loop gets for free from its edge loop.
_MEET_CHUNK = 8192


def _dedup(fresh, scratch):
    """Collapse duplicates in ``fresh``; ``scratch`` is an all-``False``
    bool array restored before returning."""
    if len(fresh) <= _UNIQUE_CUTOFF:
        return np.unique(fresh)
    scratch[fresh] = True
    nxt = np.flatnonzero(scratch)
    scratch[nxt] = False
    return nxt


def _expand(offsets, targets, frontier, visited, other_visited, scratch):
    """One whole-layer expansion of ``frontier``.

    Returns ``(met, next_frontier, accesses)``. Mirrors the dict loop:
    neighbors already in ``visited`` are skipped *without* a meet test,
    unvisited neighbors are tested against the other direction, then
    marked visited and deduplicated into the next layer. ``scratch`` is a
    caller-owned all-``False`` bool array, restored before returning.
    """
    nbrs = _gather(offsets, targets, frontier)
    total = len(nbrs)
    if total == 0:
        return False, nbrs, 0
    if total <= _MEET_CHUNK:
        fresh = nbrs[~visited[nbrs]]
        if len(fresh) == 0:
            return False, fresh, total
        if other_visited[fresh].any():
            return True, fresh, total
        visited[fresh] = True
        return False, _dedup(fresh, scratch), total
    # Huge layer: scan it slice by slice. Marking each slice visited
    # before moving on also filters cross-slice duplicates early, so only
    # intra-slice duplicates are left for the final dedup.
    pieces = []
    for lo in range(0, total, _MEET_CHUNK):
        chunk = nbrs[lo : lo + _MEET_CHUNK]
        fresh = chunk[~visited[chunk]]
        if len(fresh) == 0:
            continue
        if other_visited[fresh].any():
            return True, fresh, min(lo + _MEET_CHUNK, total)
        visited[fresh] = True
        pieces.append(fresh)
    if not pieces:
        return False, nbrs[:0], total
    return False, _dedup(np.concatenate(pieces), scratch), total


# ----------------------------------------------------------------------
# Bidirectional BFS
# ----------------------------------------------------------------------
def csr_bibfs(csr: "CSRSnapshot", source: int, target: int) -> Tuple[bool, int]:
    """Layer-alternating BiBFS over a snapshot; ``(answer, edge_accesses)``.

    ``source`` / ``target`` are original vertex ids and must exist in the
    snapshot (callers run the trivial tests first, exactly like the dict
    path).
    """
    if source == target:
        return True, 0
    si = csr.index_of(source)
    ti = csr.index_of(target)
    n = csr.num_vertices
    visited_f = np.zeros(n, dtype=bool)
    visited_r = np.zeros(n, dtype=bool)
    visited_f[si] = True
    visited_r[ti] = True
    frontier_f = np.array([si], dtype=np.int64)
    frontier_r = np.array([ti], dtype=np.int64)
    return _bibfs_loop(csr, frontier_f, frontier_r, visited_f, visited_r)


def csr_bibfs_frontiers(
    csr: "CSRSnapshot",
    frontier_f: Iterable[int],
    frontier_r: Iterable[int],
    visited_f: Set[int],
    visited_r: Set[int],
) -> Tuple[bool, int]:
    """The frontier-initialized hand-off variant (Alg. 5 without overlay).

    Inherits the guided search's visited sets and frontiers (original
    ids). Only valid when the query performed no contraction — the caller
    checks that the overlay is empty before dispatching here.
    """
    n = csr.num_vertices
    mask_f = np.zeros(n, dtype=bool)
    mask_r = np.zeros(n, dtype=bool)
    idx_f = csr.indices_of(visited_f)
    idx_r = csr.indices_of(visited_r)
    mask_f[idx_f] = True
    mask_r[idx_r] = True
    cur_f = np.unique(csr.indices_of(frontier_f))
    cur_r = np.unique(csr.indices_of(frontier_r))
    # The inherited sets may already overlap only if a meet was missed
    # upstream, which the engine's invariants forbid; a cheap intersection
    # test keeps the kernel sound regardless.
    if mask_f[idx_r].any():
        return True, 0
    return _bibfs_loop(csr, cur_f, cur_r, mask_f, mask_r)


def _bibfs_loop(csr, frontier_f, frontier_r, visited_f, visited_r):
    out_offsets, out_targets = csr.out_offsets, csr.out_targets
    in_offsets, in_targets = csr.in_offsets, csr.in_targets
    scratch = np.zeros(csr.num_vertices, dtype=bool)
    accesses = 0
    # An exhausted frontier proves the negative: that side's visited set
    # is its full BFS closure and no meet happened, so the other side
    # need not keep expanding (the same early-out the dict twin takes).
    while len(frontier_f) and len(frontier_r):
        met, frontier_f, acc = _expand(
            out_offsets, out_targets, frontier_f, visited_f, visited_r, scratch
        )
        accesses += acc
        if met:
            return True, accesses
        if not len(frontier_r):
            break
        met, frontier_r, acc = _expand(
            in_offsets, in_targets, frontier_r, visited_r, visited_f, scratch
        )
        accesses += acc
        if met:
            return True, accesses
    return False, accesses


# ----------------------------------------------------------------------
# Reachable-set kernels (supportive-vertex construction)
# ----------------------------------------------------------------------
def csr_reachable_mask(csr: "CSRSnapshot", start_index: int, forward: bool = True):
    """Boolean mask (compacted indexing) of the BFS closure of one vertex."""
    offsets = csr.out_offsets if forward else csr.in_offsets
    targets = csr.out_targets if forward else csr.in_targets
    visited = np.zeros(csr.num_vertices, dtype=bool)
    visited[start_index] = True
    frontier = np.array([start_index], dtype=np.int64)
    while len(frontier):
        nbrs = _gather(offsets, targets, frontier)
        fresh = nbrs[~visited[nbrs]]
        visited[fresh] = True
        frontier = np.unique(fresh)
    return visited


def csr_reachable_set(csr: "CSRSnapshot", start: int, forward: bool = True) -> Set[int]:
    """The BFS closure of ``start`` (original ids), kernel-computed.

    Drop-in for :func:`repro.graph.traversal.bfs_reachable` /
    ``reverse_bfs_reachable`` on the frozen snapshot.
    """
    mask = csr_reachable_mask(csr, csr.index_of(start), forward)
    return set(csr.vertex_ids[mask].tolist())


def csr_multi_reachable_sets(
    csr: "CSRSnapshot", starts: Iterable[int], forward: bool = True
) -> Dict[int, Set[int]]:
    """Batched closure construction for many sources on one snapshot.

    Used by the fast-path pruner's supportive-set rebuild: one frozen
    view, ``k`` vectorized sweeps, no dict adjacency walking.
    """
    return {x: csr_reachable_set(csr, x, forward) for x in starts}


# ----------------------------------------------------------------------
# Degree / conductance scans (community sweep)
# ----------------------------------------------------------------------
def csr_total_degrees(csr: "CSRSnapshot"):
    """``d_out + d_in`` per compacted vertex, one vectorized subtraction."""
    out_deg = csr.out_offsets[1:] - csr.out_offsets[:-1]
    in_deg = csr.in_offsets[1:] - csr.in_offsets[:-1]
    return out_deg + in_deg


def csr_sweep_cut(
    csr: "CSRSnapshot",
    ppr: Dict[int, float],
    max_size: int = 0,
) -> Tuple[Set[int], float]:
    """Vectorized Andersen–Chung–Lang sweep; twin of ``sweep_cut``.

    The incremental boundary bookkeeping of the dict sweep becomes a
    difference-array scan: a directed edge ``(u, v)`` is a boundary edge
    of prefix ``k`` exactly while ``rank(u) <= k < max(rank(u), rank(v))``
    (vertices outside the prefix rank ``+inf``), so the whole conductance
    profile is two ``bincount`` passes and a ``cumsum``.
    """
    degrees = csr_total_degrees(csr)
    index_of = csr.index_of
    items = [
        (v, value) for v, value in ppr.items() if value > 0 and csr.has_vertex(v)
    ]
    if not items:
        return set(), 1.0
    ids = np.array([v for v, _ in items], dtype=np.int64)
    values = np.array([value for _, value in items], dtype=np.float64)
    idx = np.array([index_of(int(v)) for v in ids], dtype=np.int64)
    scores = values / np.maximum(degrees[idx], 1)
    # Descending score, ties broken by descending vertex id — the exact
    # order of the dict sweep's ``sorted(..., reverse=True)`` on
    # ``(score, v)`` tuples.
    order = np.lexsort((-ids, -scores))
    if max_size > 0:
        order = order[:max_size]
    ranked_idx = idx[order]
    ranked_ids = ids[order]
    num_ranked = len(ranked_idx)

    rank = np.full(csr.num_vertices, num_ranked + 1, dtype=np.int64)
    rank[ranked_idx] = np.arange(1, num_ranked + 1, dtype=np.int64)

    vol = np.cumsum(degrees[ranked_idx])
    out_counts = csr.out_offsets[ranked_idx + 1] - csr.out_offsets[ranked_idx]
    nbrs = _gather(csr.out_offsets, csr.out_targets, ranked_idx)
    rank_u = np.repeat(np.arange(1, num_ranked + 1, dtype=np.int64), out_counts)
    rank_v = rank[nbrs]
    removed_at = np.minimum(np.maximum(rank_u, rank_v), num_ranked + 1)
    adds = np.bincount(rank_u, minlength=num_ranked + 2)
    rems = np.bincount(removed_at, minlength=num_ranked + 2)
    boundary = np.cumsum((adds - rems)[1 : num_ranked + 1])

    two_m = 2 * csr.num_edges
    denom = np.minimum(vol, two_m - vol)
    with np.errstate(divide="ignore", invalid="ignore"):
        phi = np.where(denom > 0, boundary / np.maximum(denom, 1), 1.0)
    best = int(np.argmin(phi))
    best_phi = float(phi[best])
    if best_phi >= 1.0:
        return set(), 1.0
    return set(int(v) for v in ranked_ids[: best + 1]), best_phi
