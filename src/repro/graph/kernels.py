"""Vectorized CSR traversal and push kernels for the query hot path.

The dict-of-lists :class:`~repro.graph.digraph.DynamicDiGraph` is the
mutable source of truth, but its hot read loops (frontier BiBFS,
supportive-set construction, sweep scans, and — since the push kernels —
the Alg. 3 probability-guided drain itself) pay Python-interpreter cost
per *edge*. These kernels run the same algorithms over a frozen
:class:`~repro.graph.snapshot.CSRSnapshot` with numpy whole-frontier
operations, paying interpreter cost per *layer* (or per *drain sweep*)
instead — the flat-array adjacency O'Reach demonstrates dominates
pointer-chasing representations.

Contract
--------
* Every kernel is answer-equivalent to its dict twin on the same snapshot
  (asserted by ``tests/test_kernels.py``, ``tests/test_push_kernels.py``
  and the equivalence harnesses in ``benchmarks/bench_kernels.py`` /
  ``benchmarks/bench_push_kernel.py``); only edge-access *counts* may
  differ, because whole-layer expansion cannot early-exit mid-layer.
* The push-drain kernels (:func:`csr_push_drain`,
  :func:`csr_forward_push_drain`, :func:`csr_backward_push_drain`) are
  additionally *state-deterministic*: their sweep-synchronous semantics
  are pinned down exactly (dangling pass, sorted-frontier selection,
  epsilon-bucketed greedy filter, budget truncation, gather order, one
  ``np.add.at`` scatter per sweep) so a scalar re-statement of the same
  sweeps reproduces their residue/visited/explored arrays bitwise — the
  A/B leg ``tests/test_push_kernels.py`` runs.
* Kernels never mutate the snapshot; all state (visited masks, frontiers,
  residue arrays) is caller-owned or per-call scratch.
* numpy is optional. :data:`HAVE_NUMPY` is ``False`` when the import
  fails — or when ``REPRO_NO_NUMPY`` is set in the environment, which lets
  CI prove the dict fallback stays green on a machine that *does* have
  numpy installed. Callers must consult :func:`kernels_enabled` (or simply
  pass the ``None`` they got from ``DynamicDiGraph.csr``) before
  dispatching here.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Set, Tuple, TYPE_CHECKING

try:
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled via REPRO_NO_NUMPY")
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

if TYPE_CHECKING:  # avoid importing snapshot (and numpy) at runtime
    from repro.graph.snapshot import CSRSnapshot

_enabled = HAVE_NUMPY


def kernels_enabled() -> bool:
    """Whether CSR kernels may be used (numpy present and not switched off)."""
    return _enabled


# ----------------------------------------------------------------------
# Fault-injection hook (chaos testing)
# ----------------------------------------------------------------------
#: When set, called as ``hook(kernel_name)`` on entry to the substrate
#: kernels. The chaos harness (:mod:`repro.service.faults`) installs a
#: hook that raises mid-substrate, proving the serving layer's circuit
#: breaker catches kernel-path failures instead of killing the query.
_fault_hook = None


def set_fault_hook(hook):
    """Install (or clear, with ``None``) the kernel fault hook.

    Returns the previous hook so callers can restore it. Process-wide:
    intended for chaos tests and the ``repro chaos`` harness only.
    """
    global _fault_hook
    previous = _fault_hook
    _fault_hook = hook
    return previous


def _maybe_fault(name: str) -> None:
    hook = _fault_hook
    if hook is not None:
        hook(name)


def set_kernels_enabled(flag: bool) -> bool:
    """Flip the process-wide kernel switch; returns the previous value.

    Forced ``True`` is still capped by numpy availability. Benchmarks and
    the A/B equivalence harness use this to run both paths back to back.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag) and HAVE_NUMPY
    return previous


# ----------------------------------------------------------------------
# Frontier primitives
# ----------------------------------------------------------------------
def _gather(offsets, targets, frontier):
    """Concatenate the adjacency slices of every frontier vertex.

    Equivalent to ``np.concatenate([targets[offsets[v]:offsets[v+1]] for v
    in frontier])`` but with no per-vertex Python iteration: the slice
    starts are repeated per slice length and offset by a running arange.
    """
    starts = offsets[frontier]
    counts = offsets[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return targets[:0]
    cum = np.cumsum(counts)
    idx = np.arange(total, dtype=np.int64) + np.repeat(starts - (cum - counts), counts)
    return targets[idx]


#: Layers at most this large deduplicate with ``np.unique`` (O(f log f));
#: larger ones collapse duplicates through a scratch mask + ``flatnonzero``
#: (O(f + n), no sort), which wins once layers hold thousands of vertices.
_UNIQUE_CUTOFF = 128

#: Gathered layers larger than this are meet-tested in slices so a
#: positive query can stop partway through a huge layer, the same
#: mid-layer early-out the dict loop gets for free from its edge loop.
_MEET_CHUNK = 8192


def _dedup(fresh, scratch):
    """Collapse duplicates in ``fresh``; ``scratch`` is an all-``False``
    bool array restored before returning."""
    if len(fresh) <= _UNIQUE_CUTOFF:
        return np.unique(fresh)
    scratch[fresh] = True
    nxt = np.flatnonzero(scratch)
    scratch[nxt] = False
    return nxt


def _expand(offsets, targets, frontier, visited, other_visited, scratch):
    """One whole-layer expansion of ``frontier``.

    Returns ``(met, next_frontier, accesses)``. Mirrors the dict loop:
    neighbors already in ``visited`` are skipped *without* a meet test,
    unvisited neighbors are tested against the other direction, then
    marked visited and deduplicated into the next layer. ``scratch`` is a
    caller-owned all-``False`` bool array, restored before returning.
    """
    nbrs = _gather(offsets, targets, frontier)
    total = len(nbrs)
    if total == 0:
        return False, nbrs, 0
    if total <= _MEET_CHUNK:
        fresh = nbrs[~visited[nbrs]]
        if len(fresh) == 0:
            return False, fresh, total
        if other_visited[fresh].any():
            return True, fresh, total
        visited[fresh] = True
        return False, _dedup(fresh, scratch), total
    # Huge layer: scan it slice by slice. Marking each slice visited
    # before moving on also filters cross-slice duplicates early, so only
    # intra-slice duplicates are left for the final dedup.
    pieces = []
    for lo in range(0, total, _MEET_CHUNK):
        chunk = nbrs[lo : lo + _MEET_CHUNK]
        fresh = chunk[~visited[chunk]]
        if len(fresh) == 0:
            continue
        if other_visited[fresh].any():
            return True, fresh, min(lo + _MEET_CHUNK, total)
        visited[fresh] = True
        pieces.append(fresh)
    if not pieces:
        return False, nbrs[:0], total
    return False, _dedup(np.concatenate(pieces), scratch), total


def gather_rows(offsets, targets, frontier):
    """Public alias of :func:`_gather` for the array-state search layer.

    ``frontier`` must contain compacted indices within the CSR (no super
    slots); the result concatenates the adjacency rows in frontier order.
    """
    return _gather(offsets, targets, frontier)


# ----------------------------------------------------------------------
# Guided-search push drain (Alg. 3 on array state)
# ----------------------------------------------------------------------

#: Greedy sweeps keep every frontier vertex whose score is within this
#: factor of the sweep's maximum (an epsilon-bucketed approximation of the
#: lazy max-heap: strictly highest-first ordering would serialize the
#: drain back to one vertex per sweep and lose all vectorization).
GREEDY_BUCKET = 4.0


def csr_push_drain(
    offsets,
    targets,
    deg,
    opp_deg,
    remap,
    overlay,
    super_slot,
    cand,
    residue,
    visited,
    explored,
    other_visited,
    epsilon,
    alpha,
    forward_style,
    greedy,
    push_budget,
):
    """One Alg. 3 drain as sweep-synchronous whole-frontier array passes.

    State layout (see :mod:`repro.core.array_search`): all state arrays are
    sized ``n + 2`` over the snapshot's compacted indices plus two super
    slots; ``remap`` maps stored CSR target indices to their current
    reduced-graph representative (``None`` until the first contraction —
    identity — after which it must cover every stored index and slot), and
    ``overlay`` is the stored adjacency of this direction's super-vertex
    (already remapped ids). ``deg`` holds reduced-graph directional
    degrees, ``opp_deg`` the clamped raw degrees against the direction
    (the backward-push divisor — raw, not lumped, exactly like the dict
    twin); both may be the plain length-``n`` tables while no contraction
    has happened (no slot is indexable before one exists).

    ``cand`` is the drain's sorted candidate list — a superset of every
    index with positive residue. Sweeps scan only it, never the whole
    state arrays, so a drain costs O(touched + edges), not O(n * sweeps);
    the updated candidate list is handed back for the next drain (residue
    only ever lands on scattered receivers, so the superset invariant is
    maintained by construction).

    Each sweep:

    1. drop drained candidates; zero the residue of dangling candidates
       (``deg == 0``) and mark them explored — their mass can never move
       (the dict twin's inline rule);
    2. select the whole pushable frontier, sorted ascending (forward
       style: ``residue >= epsilon * deg``; backward: ``residue >=
       epsilon``), keeping only the top epsilon-bucket under ``greedy``
       and truncating to the remaining ``push_budget``;
    3. mark the frontier explored, zero its residues, gather its CSR rows
       (plus ``overlay`` when the super slot is in the frontier), compose
       ``remap`` over the gathered targets, and drop same-representative
       self-loops;
    4. meet-test every not-yet-visited receiver against ``other_visited``
       — a hit returns immediately (the sweep's visited marks are *not*
       applied; the query is over) — then mark receivers visited;
    5. scatter the distributed residue with one ``np.add.at``
       (forward: ``(1-alpha) * r_u / deg[u]`` per edge; backward:
       ``(1-alpha) * r_u / opp_deg[raw_receiver]``) and merge the
       receivers into the candidate list.

    Push is not order-confluent, so visited/explored sets may differ from
    the lazy-heap dict twin's — both are sound, verdicts agree (the A/B
    harness asserts it). Counters use the shared contract: one push per
    vertex expansion, one edge access per adjacency entry gathered.

    Returns ``(met, cand, pushes, edge_accesses, int_edges,
    explored_added)``.
    """
    _maybe_fault("csr_push_drain")
    one_minus_alpha = 1.0 - alpha
    pushes = 0
    edge_accesses = 0
    int_edges = 0
    explored_added = 0
    n_base = len(offsets) - 1
    has_remap = remap is not None

    while True:
        # (1) candidate upkeep: drop drained, park dangling residue.
        r_cand = residue[cand]
        alive = r_cand > 0.0
        cand = cand[alive]
        r_cand = r_cand[alive]
        cand_deg = deg[cand]
        if not cand_deg.all():
            dmask = cand_deg == 0.0
            dangling = cand[dmask]
            residue[dangling] = 0.0
            newly = dangling[~explored[dangling]]
            explored[newly] = True
            explored_added += len(newly)
            live = ~dmask
            cand = cand[live]
            r_cand = r_cand[live]
            cand_deg = cand_deg[live]

        # (2) frontier selection (cand is sorted ascending, so the super
        # slot — the highest live index — lands last). ``r_cand`` stays
        # valid as the frontier residues: nothing below mutates ``residue``
        # at a frontier index before the capture point.
        sel = r_cand >= (epsilon * cand_deg if forward_style else epsilon)
        frontier = cand[sel]
        if len(frontier) == 0:
            break
        r_front = r_cand[sel]
        deg_front = cand_deg[sel]
        if greedy:
            scores = r_front / deg_front if forward_style else r_front
            gmask = scores >= scores.max() / GREEDY_BUCKET
            frontier = frontier[gmask]
            r_front = r_front[gmask]
            deg_front = deg_front[gmask]
        budget_stop = pushes + len(frontier) >= push_budget
        if budget_stop:
            take = max(push_budget - pushes, 0)
            if take == 0:
                break
            frontier = frontier[:take]
            r_front = r_front[:take]
            deg_front = deg_front[:take]
        pushes += len(frontier)

        # (3) expand: explored bookkeeping, residue capture, gather.
        nmask = ~explored[frontier]
        newly = frontier[nmask]
        explored[newly] = True
        explored_added += len(newly)
        int_edges += int(deg_front[nmask].sum())
        residue[frontier] = 0.0

        # The super slot can only sit in the frontier once a remap exists.
        real = frontier[frontier < n_base] if has_remap else frontier
        starts = offsets[real]
        counts = offsets[real + 1] - starts
        total = int(counts.sum())
        if total:
            cum = np.cumsum(counts)
            idx = np.arange(total, dtype=np.int64) + np.repeat(
                starts - (cum - counts), counts
            )
            raw = targets[idx]
        else:
            raw = targets[:0]
        src = np.repeat(real, counts)
        r_src = np.repeat(r_front[: len(real)], counts)
        if len(real) != len(frontier) and len(overlay):
            # Super slot in the frontier: its stored adjacency rides along.
            raw = np.concatenate([raw, overlay])
            src = np.concatenate(
                [src, np.full(len(overlay), super_slot, dtype=np.int64)]
            )
            r_src = np.concatenate(
                [r_src, np.full(len(overlay), r_front[-1])]
            )
        edge_accesses += len(raw)
        if len(raw) == 0:
            if budget_stop:
                break
            continue
        recv = remap[raw] if has_remap else raw
        keep = recv != src
        if not keep.all():
            recv = recv[keep]
            raw = raw[keep]
            src = src[keep]
            r_src = r_src[keep]
        if len(recv) == 0:
            if budget_stop:
                break
            continue

        # (4) meet test against the pre-sweep visited state, then mark.
        unseen = recv[~visited[recv]]
        if len(unseen) and other_visited[unseen].any():
            return True, cand, pushes, edge_accesses, int_edges, explored_added
        visited[unseen] = True

        # (5) distribute and fold the receivers into the candidate list.
        if forward_style:
            np.add.at(residue, recv, one_minus_alpha * r_src / deg[src])
        else:
            np.add.at(
                residue, recv, one_minus_alpha * r_src / opp_deg[raw]
            )
        cand = np.unique(np.concatenate([cand, recv]))
        if budget_stop:
            break

    return False, cand, pushes, edge_accesses, int_edges, explored_added


# ----------------------------------------------------------------------
# PPR push drains (forward / backward push on plain CSR, no overlay)
# ----------------------------------------------------------------------
def csr_forward_push_drain(
    offsets, targets, residue, reserve, alpha, epsilon, max_operations=None
):
    """Forward push (ACL06) to quiescence as whole-frontier sweeps.

    ``residue`` / ``reserve`` are dense float64 arrays over compacted
    indices, mutated in place. Each sweep pushes *every* vertex with
    ``residue >= epsilon * d_out`` at once: reserve takes ``alpha * r``,
    one gather + ``np.add.at`` scatters ``(1-alpha) * r / d_out`` along
    the out-edges. Dangling residue becomes reserve (the walk halts).
    Terminates within Lemma 1's ``1/(alpha*epsilon)`` edge accesses —
    the bound is order-free, so it holds for sweeps too.

    Returns ``(pushes, edge_accesses)`` in the shared counter units.
    """
    deg = (offsets[1:] - offsets[:-1]).astype(np.float64)
    one_minus_alpha = 1.0 - alpha
    pushes = 0
    edge_accesses = 0
    while True:
        dangling = np.flatnonzero((residue > 0.0) & (deg == 0.0))
        if len(dangling):
            reserve[dangling] += residue[dangling]
            residue[dangling] = 0.0
        frontier = np.flatnonzero((deg > 0.0) & (residue >= epsilon * deg))
        if len(frontier) == 0:
            break
        budget_stop = (
            max_operations is not None
            and pushes + len(frontier) >= max_operations
        )
        if budget_stop:
            frontier = frontier[: max(max_operations - pushes, 0)]
            if len(frontier) == 0:
                break
        pushes += len(frontier)
        r_front = residue[frontier].copy()
        reserve[frontier] += alpha * r_front
        residue[frontier] = 0.0
        counts = offsets[frontier + 1] - offsets[frontier]
        nbrs = _gather(offsets, targets, frontier)
        edge_accesses += len(nbrs)
        np.add.at(
            residue,
            nbrs,
            np.repeat(one_minus_alpha * r_front / counts, counts),
        )
        if budget_stop:
            break
    return pushes, edge_accesses


def csr_backward_push_drain(
    in_offsets,
    in_targets,
    out_deg,
    residue,
    reserve,
    alpha,
    epsilon,
    max_operations=None,
):
    """Backward push (contributions) to quiescence as sweeps.

    ``out_deg`` is the float64 out-degree table (the receiver-side
    divisor; every in-neighbor has out-degree >= 1 by construction).
    Mirrors the scalar twin: a vertex with ``residue >= epsilon`` is
    pushed even when it has no in-edges (the push is counted; nothing is
    distributed). Returns ``(pushes, edge_accesses)``.
    """
    one_minus_alpha = 1.0 - alpha
    pushes = 0
    edge_accesses = 0
    while True:
        frontier = np.flatnonzero(residue >= epsilon)
        if len(frontier) == 0:
            break
        budget_stop = (
            max_operations is not None
            and pushes + len(frontier) >= max_operations
        )
        if budget_stop:
            frontier = frontier[: max(max_operations - pushes, 0)]
            if len(frontier) == 0:
                break
        pushes += len(frontier)
        r_front = residue[frontier].copy()
        reserve[frontier] += alpha * r_front
        residue[frontier] = 0.0
        counts = in_offsets[frontier + 1] - in_offsets[frontier]
        nbrs = _gather(in_offsets, in_targets, frontier)
        edge_accesses += len(nbrs)
        np.add.at(
            residue,
            nbrs,
            np.repeat(one_minus_alpha * r_front, counts) / out_deg[nbrs],
        )
        if budget_stop:
            break
    return pushes, edge_accesses


# ----------------------------------------------------------------------
# Bidirectional BFS
# ----------------------------------------------------------------------
def csr_bibfs(
    csr: "CSRSnapshot", source: int, target: int, budget=None
) -> Tuple[bool, int]:
    """Layer-alternating BiBFS over a snapshot; ``(answer, edge_accesses)``.

    ``source`` / ``target`` are original vertex ids and must exist in the
    snapshot (callers run the trivial tests first, exactly like the dict
    path). ``budget``, when given, is checkpointed once per layer (see
    :meth:`repro.core.budget.Budget.checkpoint`); a raise abandons the
    kernel-local masks, so no partial state survives.
    """
    if source == target:
        return True, 0
    si = csr.index_of(source)
    ti = csr.index_of(target)
    n = csr.num_vertices
    visited_f = np.zeros(n, dtype=bool)
    visited_r = np.zeros(n, dtype=bool)
    visited_f[si] = True
    visited_r[ti] = True
    frontier_f = np.array([si], dtype=np.int64)
    frontier_r = np.array([ti], dtype=np.int64)
    return _bibfs_loop(csr, frontier_f, frontier_r, visited_f, visited_r, budget)


def csr_bibfs_frontiers(
    csr: "CSRSnapshot",
    frontier_f: Iterable[int],
    frontier_r: Iterable[int],
    visited_f: Set[int],
    visited_r: Set[int],
    budget=None,
) -> Tuple[bool, int]:
    """The frontier-initialized hand-off variant (Alg. 5 without overlay).

    Inherits the guided search's visited sets and frontiers (original
    ids). Only valid when the query performed no contraction — the caller
    checks that the overlay is empty before dispatching here. The input
    sets are never mutated, so a budget raise leaves the caller's state
    exactly as handed in.
    """
    n = csr.num_vertices
    mask_f = np.zeros(n, dtype=bool)
    mask_r = np.zeros(n, dtype=bool)
    idx_f = csr.indices_of(visited_f)
    idx_r = csr.indices_of(visited_r)
    mask_f[idx_f] = True
    mask_r[idx_r] = True
    cur_f = np.unique(csr.indices_of(frontier_f))
    cur_r = np.unique(csr.indices_of(frontier_r))
    # The inherited sets may already overlap only if a meet was missed
    # upstream, which the engine's invariants forbid; a cheap intersection
    # test keeps the kernel sound regardless.
    if mask_f[idx_r].any():
        return True, 0
    return _bibfs_loop(csr, cur_f, cur_r, mask_f, mask_r, budget)


def _bibfs_loop(csr, frontier_f, frontier_r, visited_f, visited_r, budget=None):
    _maybe_fault("csr_bibfs")
    out_offsets, out_targets = csr.out_offsets, csr.out_targets
    in_offsets, in_targets = csr.in_offsets, csr.in_targets
    scratch = np.zeros(csr.num_vertices, dtype=bool)
    accesses = 0
    charged = 0
    # An exhausted frontier proves the negative: that side's visited set
    # is its full BFS closure and no meet happened, so the other side
    # need not keep expanding (the same early-out the dict twin takes).
    while len(frontier_f) and len(frontier_r):
        if budget is not None:
            # Charge-before-test ordering: a raise never double-charges.
            delta = accesses - charged
            charged = accesses
            budget.checkpoint(delta)
        met, frontier_f, acc = _expand(
            out_offsets, out_targets, frontier_f, visited_f, visited_r, scratch
        )
        accesses += acc
        if met:
            _charge_rest(budget, accesses - charged)
            return True, accesses
        if not len(frontier_r):
            break
        met, frontier_r, acc = _expand(
            in_offsets, in_targets, frontier_r, visited_r, visited_f, scratch
        )
        accesses += acc
        if met:
            _charge_rest(budget, accesses - charged)
            return True, accesses
    _charge_rest(budget, accesses - charged)
    return False, accesses


def _charge_rest(budget, delta: int) -> None:
    if budget is not None and delta:
        budget.charge(delta)


# ----------------------------------------------------------------------
# Reachable-set kernels (supportive-vertex construction)
# ----------------------------------------------------------------------
def csr_reachable_mask(csr: "CSRSnapshot", start_index: int, forward: bool = True):
    """Boolean mask (compacted indexing) of the BFS closure of one vertex."""
    offsets = csr.out_offsets if forward else csr.in_offsets
    targets = csr.out_targets if forward else csr.in_targets
    visited = np.zeros(csr.num_vertices, dtype=bool)
    visited[start_index] = True
    frontier = np.array([start_index], dtype=np.int64)
    while len(frontier):
        nbrs = _gather(offsets, targets, frontier)
        fresh = nbrs[~visited[nbrs]]
        visited[fresh] = True
        frontier = np.unique(fresh)
    return visited


def csr_reachable_set(csr: "CSRSnapshot", start: int, forward: bool = True) -> Set[int]:
    """The BFS closure of ``start`` (original ids), kernel-computed.

    Drop-in for :func:`repro.graph.traversal.bfs_reachable` /
    ``reverse_bfs_reachable`` on the frozen snapshot.
    """
    mask = csr_reachable_mask(csr, csr.index_of(start), forward)
    return set(csr.vertex_ids[mask].tolist())


def csr_multi_reachable_sets(
    csr: "CSRSnapshot", starts: Iterable[int], forward: bool = True
) -> Dict[int, Set[int]]:
    """Batched closure construction for many sources on one snapshot.

    Used by the fast-path pruner's supportive-set rebuild: one frozen
    view, ``k`` vectorized sweeps, no dict adjacency walking.
    """
    return {x: csr_reachable_set(csr, x, forward) for x in starts}


# ----------------------------------------------------------------------
# Degree / conductance scans (community sweep)
# ----------------------------------------------------------------------
def csr_total_degrees(csr: "CSRSnapshot"):
    """``d_out + d_in`` per compacted vertex, one vectorized subtraction."""
    out_deg = csr.out_offsets[1:] - csr.out_offsets[:-1]
    in_deg = csr.in_offsets[1:] - csr.in_offsets[:-1]
    return out_deg + in_deg


def csr_sweep_cut(
    csr: "CSRSnapshot",
    ppr: Dict[int, float],
    max_size: int = 0,
) -> Tuple[Set[int], float]:
    """Vectorized Andersen–Chung–Lang sweep; twin of ``sweep_cut``.

    The incremental boundary bookkeeping of the dict sweep becomes a
    difference-array scan: a directed edge ``(u, v)`` is a boundary edge
    of prefix ``k`` exactly while ``rank(u) <= k < max(rank(u), rank(v))``
    (vertices outside the prefix rank ``+inf``), so the whole conductance
    profile is two ``bincount`` passes and a ``cumsum``.
    """
    degrees = csr_total_degrees(csr)
    index_of = csr.index_of
    items = [
        (v, value) for v, value in ppr.items() if value > 0 and csr.has_vertex(v)
    ]
    if not items:
        return set(), 1.0
    ids = np.array([v for v, _ in items], dtype=np.int64)
    values = np.array([value for _, value in items], dtype=np.float64)
    idx = np.array([index_of(int(v)) for v in ids], dtype=np.int64)
    scores = values / np.maximum(degrees[idx], 1)
    # Descending score, ties broken by descending vertex id — the exact
    # order of the dict sweep's ``sorted(..., reverse=True)`` on
    # ``(score, v)`` tuples.
    order = np.lexsort((-ids, -scores))
    if max_size > 0:
        order = order[:max_size]
    ranked_idx = idx[order]
    ranked_ids = ids[order]
    num_ranked = len(ranked_idx)

    rank = np.full(csr.num_vertices, num_ranked + 1, dtype=np.int64)
    rank[ranked_idx] = np.arange(1, num_ranked + 1, dtype=np.int64)

    vol = np.cumsum(degrees[ranked_idx])
    out_counts = csr.out_offsets[ranked_idx + 1] - csr.out_offsets[ranked_idx]
    nbrs = _gather(csr.out_offsets, csr.out_targets, ranked_idx)
    rank_u = np.repeat(np.arange(1, num_ranked + 1, dtype=np.int64), out_counts)
    rank_v = rank[nbrs]
    removed_at = np.minimum(np.maximum(rank_u, rank_v), num_ranked + 1)
    adds = np.bincount(rank_u, minlength=num_ranked + 2)
    rems = np.bincount(removed_at, minlength=num_ranked + 2)
    boundary = np.cumsum((adds - rems)[1 : num_ranked + 1])

    two_m = 2 * csr.num_edges
    denom = np.minimum(vol, two_m - vol)
    with np.errstate(divide="ignore", invalid="ignore"):
        phi = np.where(denom > 0, boundary / np.maximum(denom, 1), 1.0)
    best = int(np.argmin(phi))
    best_phi = float(phi[best])
    if best_phi >= 1.0:
        return set(), 1.0
    return set(int(v) for v in ranked_ids[: best + 1]), best_phi
