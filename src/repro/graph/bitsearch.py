"""Bit-parallel batched reachability: 64 BiBFS queries per uint64 word.

DBL (Lyu et al., 2021) packs per-vertex reachability labels into machine
words so one AND/OR compares 64 landmarks at once. This module applies
the same word-packing to *query execution*: a batch of ``B`` pairs
becomes an ``(n, ceil(B/64))`` uint64 label matrix per direction, and one
bidirectional BFS sweep over the frozen CSR snapshot advances *all* lanes
simultaneously — per-edge work is a word OR over the whole batch instead
of a per-query set insertion, so Python/numpy dispatch cost is paid once
per layer for the batch rather than once per layer per query.

Lane semantics
--------------
Lane ``q`` (bit ``q % 64`` of word ``q // 64``) belongs to pair
``(sources[q], targets[q])``:

* ``label_f[v]`` carries bit ``q`` iff ``v`` is reachable from
  ``sources[q]`` through the layers explored so far;
* ``label_r[v]`` carries bit ``q`` iff ``targets[q]`` is reachable from
  ``v`` likewise;
* a **meet** — ``label_f[v] & label_r[v]`` non-zero in lane ``q`` — proves
  the positive;
* a lane that stops appearing on one side's frontier has had that side's
  *full* closure explored without a meet, which proves the negative: if
  ``t`` were reachable, the forward closure would contain ``t``, where the
  reverse seed bit already waits.

Propagation is **delta-based** (the classic frontier discipline, lifted to
words): a vertex re-enters the frontier only with the lanes it *gained*
last layer, since earlier lanes were already pushed when they arrived.
Resolved lanes are masked out of every contribution through the per-word
``pending`` mask, and a word whose pending mask empties is compacted out
of the label matrices entirely — the per-wave early-out that keeps late
layers (a few stubborn negatives) from paying full-batch width.

Scatter merges use ``argsort`` + ``np.bitwise_or.reduceat`` rather than
``np.bitwise_or.at``: the unbuffered ``ufunc.at`` loops per element, while
sort+reduceat stays in vectorized code and yields the per-target merged
word rows (and hence the ``new_bits`` delta) directly.

Budgets are checkpointed at layer boundaries exactly like the scalar
kernels: edge accesses are charged *before* the layer is examined, so a
:class:`~repro.core.budget.BudgetExceeded` cannot be outrun by one huge
layer.

Like every other kernel, this module is inert without numpy: callers must
check :data:`~repro.graph.kernels.HAVE_NUMPY` /
:func:`~repro.graph.kernels.kernels_enabled` and fall back to the scalar
path (the serving engine does this in ``query_batch``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.budget import Budget
from repro.graph.kernels import HAVE_NUMPY, _gather, _maybe_fault, np

if TYPE_CHECKING:  # pragma: no cover
    from repro.graph.snapshot import CSRSnapshot

#: Lanes per label word.
WORD_BITS = 64


def words_for(lanes: int) -> int:
    """How many uint64 words a batch of ``lanes`` queries occupies."""
    return (lanes + WORD_BITS - 1) // WORD_BITS


def _sweep_targets(csr: "CSRSnapshot"):
    """(out_targets, in_targets) in the narrowest dtype the sweep can use.

    The per-layer gather/sort/compare passes are memory-bound, so when
    every vertex index fits a uint16 (the snapshot has <= 65535 vertices)
    the sweeps read 2-byte target copies instead of the snapshot's int64
    arrays — a 4x cut in edge-pass traffic. The copies are cached on the
    snapshot itself: snapshots are immutable and shared across the many
    waves of a batch, while this module may see a different snapshot
    after every update epoch.

    The cache entry is keyed by ``(segment_token, pid)`` rather than bare
    object identity: a snapshot that crosses a fork (or is rebuilt from a
    shared-memory segment in a spawned worker) carries the parent's cached
    attribute with it, and the worker must rebuild its own copies instead
    of trusting a view whose token belongs to another process's epoch.
    """
    token = (getattr(csr, "segment_token", None), os.getpid())
    state = getattr(csr, "_bit_targets_state", None)
    if state is not None and state[0] == token:
        return state[1]
    if csr.num_vertices > int(np.iinfo(np.uint16).max):
        return csr.out_targets, csr.in_targets
    cached = (
        csr.out_targets.astype(np.uint16),
        csr.in_targets.astype(np.uint16),
    )
    try:
        csr._bit_targets_state = (token, cached)
    except AttributeError:  # pragma: no cover - frozen/slots snapshot stand-in
        pass
    return cached


@dataclass(frozen=True)
class BitSweepStats:
    """What one bit-parallel sweep did (for counters and cost models)."""

    #: Queries packed into the sweep.
    lanes: int
    #: uint64 words the label matrices were seeded with.
    words: int
    #: Frontier expansions executed (forward + reverse).
    layers: int
    #: CSR edge slots gathered across all layers.
    edge_accesses: int
    #: Times the label matrices shed exhausted words mid-sweep.
    compactions: int

    @property
    def occupancy(self) -> float:
        """Fraction of seeded word bits that carried a live query."""
        return self.lanes / (self.words * WORD_BITS) if self.words else 0.0


def _sweep_single_word(
    csr: "CSRSnapshot",
    pairs: Sequence[Tuple[int, int]],
    budget: Optional[Budget],
    lead: str,
) -> Tuple[List[bool], BitSweepStats]:
    """One-word specialization of :func:`csr_bit_bibfs` (<= 64 lanes).

    Batches this narrow are numpy-dispatch-bound, not bandwidth-bound:
    the label state fits a flat ``(n,)`` uint64 vector and the pending
    mask a single scalar, so every per-layer matrix pass (axis keywords,
    2-D row gathers, compaction bookkeeping) collapses to its cheapest
    1-D form. The batch planner slices waves to 64 lanes mainly to stay
    on this path.
    """
    lanes = len(pairs)
    n = csr.num_vertices
    src_idx = csr.indices_of([s for s, _ in pairs])
    tgt_idx = csr.indices_of([t for _, t in pairs])

    lane_bit = np.uint64(1) << np.arange(lanes, dtype=np.uint64)
    full = np.uint64(np.iinfo(np.uint64).max)
    one = np.uint64(1)

    label_f = np.zeros(n, dtype=np.uint64)
    label_r = np.zeros(n, dtype=np.uint64)
    np.bitwise_or.at(label_f, src_idx, lane_bit)
    np.bitwise_or.at(label_r, tgt_idx, lane_bit)

    lanes_mask = full if lanes == WORD_BITS else (one << np.uint64(lanes)) - one
    pending = lanes_mask
    result = np.uint64(0)

    seed_rows = np.unique(np.concatenate([src_idx, tgt_idx]))
    met = np.bitwise_or.reduce(label_f[seed_rows] & label_r[seed_rows])
    result |= met
    pending &= ~met

    front_f = np.unique(src_idx)
    front_r = np.unique(tgt_idx)
    delta_f = label_f[front_f]
    delta_r = label_r[front_r]
    adv_f = np.bitwise_or.reduce(delta_f)
    adv_r = np.bitwise_or.reduce(delta_r)

    out_off, in_off = csr.out_offsets, csr.in_offsets
    # Narrow (uint16) target copies double as radix-sortable keys: numpy
    # only radix-sorts <= 16-bit dtypes (wider stable sorts are ~10x
    # slower comparison sorts), so gathering narrow also sorts fast.
    out_tgt, in_tgt = _sweep_targets(csr)
    prefer_forward = lead != "reverse"
    layers = 0
    accesses = 0
    charged = 0

    # Masking and frontier costing are lazy: a delta only needs re-masking
    # when ``pending`` shrank since it was last masked (``masked_*`` holds
    # that value — expansion deltas are born masked and row-compressed),
    # and a side's adjacency volume only changes when its frontier does.
    # Most layers resolve no lane, so both books stay closed. The seeds
    # were built before the seed-met lanes left ``pending``, hence the
    # full-lane initial mark.
    masked_f = masked_r = lanes_mask
    cost_f = int((out_off[front_f + 1] - out_off[front_f]).sum())
    cost_r = int((in_off[front_r + 1] - in_off[front_r]).sum())

    while pending:
        if budget is not None:
            budget.checkpoint(accesses - charged)
            charged = accesses

        if masked_f != pending:
            delta_f &= pending
            live = delta_f != 0
            if not live.all():
                front_f, delta_f = front_f[live], delta_f[live]
                cost_f = int((out_off[front_f + 1] - out_off[front_f]).sum())
            masked_f = pending
        if masked_r != pending:
            delta_r &= pending
            live = delta_r != 0
            if not live.all():
                front_r, delta_r = front_r[live], delta_r[live]
                cost_r = int((in_off[front_r + 1] - in_off[front_r]).sum())
            masked_r = pending

        pending &= adv_f & adv_r
        if not pending:
            break

        forward = cost_f < cost_r or (cost_f == cost_r and prefer_forward)
        if forward:
            offsets, targets = out_off, out_tgt
            frontier, delta, label, other = front_f, delta_f, label_f, label_r
        else:
            offsets, targets = in_off, in_tgt
            frontier, delta, label, other = front_r, delta_r, label_r, label_f
        layers += 1

        counts = offsets[frontier + 1] - offsets[frontier]
        recv = _gather(offsets, targets, frontier)
        accesses += len(recv)
        if len(recv) == 0:
            next_rows = frontier[:0]
            next_delta = delta[:0]
            next_adv = np.uint64(0)
        else:
            edge_src = np.repeat(
                np.arange(len(frontier), dtype=np.int32), counts
            )
            order = np.argsort(recv, kind="stable")
            sorted_recv = recv[order]
            sorted_contrib = np.take(delta, edge_src[order])
            head = np.empty(len(sorted_recv), dtype=bool)
            head[0] = True
            np.not_equal(sorted_recv[1:], sorted_recv[:-1], out=head[1:])
            bounds = np.flatnonzero(head)
            rows = sorted_recv[bounds]
            merged = np.bitwise_or.reduceat(sorted_contrib, bounds)
            # Meet-test straight off the merge, before the label update:
            # lanes already resolved re-meet here (labels are never
            # masked), hence the ``& pending``. When every remaining lane
            # meets — the common fate of a wave's last, largest layer —
            # the whole update tail below is skipped.
            met = np.bitwise_or.reduce(merged & np.take(other, rows)) & pending
            if met:
                result |= met
                pending &= ~met
                if not pending:
                    break
            seen = np.take(label, rows)
            new_bits = merged & ~seen
            gained = new_bits != 0
            if not gained.all():
                rows, new_bits = rows[gained], new_bits[gained]
                seen = seen[gained]
            if len(rows):
                label[rows] = seen | new_bits
                next_adv = np.bitwise_or.reduce(new_bits)
            else:
                next_adv = np.uint64(0)
            next_rows = rows
            next_delta = new_bits

        # The fresh delta inherits the expanded side's masked-at value (its
        # lanes are a subset of the old delta's), so only the cost changes.
        if forward:
            front_f, delta_f, adv_f = next_rows, next_delta, next_adv
            cost_f = int((out_off[front_f + 1] - out_off[front_f]).sum())
        else:
            front_r, delta_r, adv_r = next_rows, next_delta, next_adv
            cost_r = int((in_off[front_r + 1] - in_off[front_r]).sum())

    if budget is not None:
        budget.checkpoint(accesses - charged)

    answers = (result & lane_bit) != 0
    stats = BitSweepStats(lanes, 1, layers, accesses, 0)
    return [bool(a) for a in answers], stats


def csr_bit_bibfs(
    csr: "CSRSnapshot",
    pairs: Sequence[Tuple[int, int]],
    *,
    budget: Optional[Budget] = None,
    lead: str = "forward",
) -> Tuple[List[bool], BitSweepStats]:
    """Answer every ``(source, target)`` pair in one bit-parallel sweep.

    Every endpoint must exist in the snapshot (the batch planner's
    pre-filter guarantees this; it also drains ``s == t`` and
    missing-endpoint pairs, though both are handled here for safety).
    ``lead`` breaks the first-layer direction tie when both frontiers cost
    the same — later layers always expand the cheaper side, measured by
    the adjacency volume of the live frontier.

    Returns ``(answers, stats)`` with ``answers[q]`` the verdict for
    ``pairs[q]``. Raises :class:`~repro.core.budget.BudgetExceeded` at a
    layer boundary when the budget expires — the caller keeps nothing from
    the sweep (the serving engine then reroutes the wave to the scalar
    path, whose degraded stage owns partial-answer semantics).
    """
    if not HAVE_NUMPY:
        raise RuntimeError("bit-parallel kernels require numpy")
    _maybe_fault("csr_bit_bibfs")

    lanes = len(pairs)
    if lanes == 0:
        return [], BitSweepStats(0, 0, 0, 0, 0)
    if lanes <= WORD_BITS:
        return _sweep_single_word(csr, pairs, budget, lead)

    n = csr.num_vertices
    words = words_for(lanes)
    src_idx = csr.indices_of([s for s, _ in pairs])
    tgt_idx = csr.indices_of([t for _, t in pairs])

    lane = np.arange(lanes, dtype=np.uint64)
    lane_word = (lane >> np.uint64(6)).astype(np.int64)
    lane_bit = np.uint64(1) << (lane & np.uint64(63))

    label_f = np.zeros((n, words), dtype=np.uint64)
    label_r = np.zeros((n, words), dtype=np.uint64)
    # Seeding is the one scatter small enough for the unbuffered ufunc.at
    # (duplicate (row, word) cells OR correctly there).
    np.bitwise_or.at(label_f, (src_idx, lane_word), lane_bit)
    np.bitwise_or.at(label_r, (tgt_idx, lane_word), lane_bit)

    pending = np.full(words, np.iinfo(np.uint64).max, dtype=np.uint64)
    tail = lanes % WORD_BITS
    if tail:
        pending[-1] = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)

    # Verdict bits, indexed by *original* word id (compaction-proof).
    result = np.zeros(words, dtype=np.uint64)
    cols = np.arange(words, dtype=np.int64)  # original word of each column

    # Seed meets (covers s == t and directly coincident endpoints).
    seed_rows = np.unique(np.concatenate([src_idx, tgt_idx]))
    met = np.bitwise_or.reduce(label_f[seed_rows] & label_r[seed_rows], axis=0)
    result |= met
    pending &= ~met

    # Delta frontiers: rows plus the lanes they gained when visited. At
    # the seed every present bit is new. ``adv_*`` caches the column-OR of
    # each side's delta — a pending lane absent from it has that side's
    # closure fully explored (negative). The cache stays exact without a
    # per-layer full pass: in-place ``delta &= pending`` masking commutes
    # with the OR, and dropping all-zero rows cannot change it, so
    # ``adv & pending`` is always the live aggregate.
    front_f = np.unique(src_idx)
    front_r = np.unique(tgt_idx)
    delta_f = label_f[front_f]
    delta_r = label_r[front_r]
    adv_f = np.bitwise_or.reduce(delta_f, axis=0)
    adv_r = np.bitwise_or.reduce(delta_r, axis=0)

    out_off, in_off = csr.out_offsets, csr.in_offsets
    # Narrow target copies (see _sweep_targets): less gather traffic, and
    # receiver sorting — the per-layer scatter-merge workhorse — hits
    # numpy's radix path, which only exists for <= 16-bit keys.
    out_tgt, in_tgt = _sweep_targets(csr)
    prefer_forward = lead != "reverse"
    layers = 0
    accesses = 0
    charged = 0
    compactions = 0

    # Lazy masking/costing, as in the single-word path, tracked by an
    # epoch counter bumped whenever ``pending`` changes (the mask value
    # is an array here, so a counter beats keeping copies around). The
    # seed deltas predate the seed-met mask, hence the forced first pass.
    # Keeping both frontiers pruned whenever lanes *do* resolve keeps the
    # direction cost estimate honest — stale rows systematically inflate
    # one side and triple the edge volume.
    epoch = 0
    masked_f_epoch = masked_r_epoch = -1
    cost_f = int((out_off[front_f + 1] - out_off[front_f]).sum())
    cost_r = int((in_off[front_r + 1] - in_off[front_r]).sum())

    while pending.any():
        if budget is not None:
            budget.checkpoint(accesses - charged)
            charged = accesses

        if masked_f_epoch != epoch:
            delta_f &= pending
            live = np.any(delta_f != 0, axis=1)
            if not live.all():
                front_f, delta_f = front_f[live], delta_f[live]
                cost_f = int((out_off[front_f + 1] - out_off[front_f]).sum())
            masked_f_epoch = epoch
        if masked_r_epoch != epoch:
            delta_r &= pending
            live = np.any(delta_r != 0, axis=1)
            if not live.all():
                front_r, delta_r = front_r[live], delta_r[live]
                cost_r = int((in_off[front_r + 1] - in_off[front_r]).sum())
            masked_r_epoch = epoch

        new_pending = pending & adv_f & adv_r
        if not np.array_equal(new_pending, pending):
            pending = new_pending
            epoch += 1
            if not pending.any():
                break  # a side exhausted every remaining lane: negatives

        forward = cost_f < cost_r or (cost_f == cost_r and prefer_forward)
        if forward:
            offsets, targets = out_off, out_tgt
            frontier, delta, label, other = front_f, delta_f, label_f, label_r
        else:
            offsets, targets = in_off, in_tgt
            frontier, delta, label, other = front_r, delta_r, label_r, label_f
        layers += 1

        counts = offsets[frontier + 1] - offsets[frontier]
        recv = _gather(offsets, targets, frontier)
        accesses += len(recv)
        if len(recv) == 0:
            next_rows = frontier[:0]
            next_delta = delta[:0]
            next_adv = np.zeros(len(cols), dtype=np.uint64)
        else:
            # Sort bare edge ids, not the word rows; the contribution
            # matrix is then built by one fused gather instead of a
            # full-width repeat plus a full-width permute.
            edge_src = np.repeat(
                np.arange(len(frontier), dtype=np.int32), counts
            )
            order = np.argsort(recv, kind="stable")
            sorted_recv = recv[order]
            sorted_contrib = np.take(delta, edge_src[order], axis=0)
            head = np.empty(len(sorted_recv), dtype=bool)
            head[0] = True
            np.not_equal(sorted_recv[1:], sorted_recv[:-1], out=head[1:])
            bounds = np.flatnonzero(head)
            rows = sorted_recv[bounds]
            merged = np.bitwise_or.reduceat(sorted_contrib, bounds, axis=0)
            # Meet-test straight off the merge (see the single-word path):
            # when every remaining lane meets, the update tail is skipped.
            met = (
                np.bitwise_or.reduce(
                    merged & np.take(other, rows, axis=0), axis=0
                )
                & pending
            )
            if met.any():
                result[cols] |= met
                pending = pending & ~met
                epoch += 1
                if not pending.any():
                    break
            seen = np.take(label, rows, axis=0)
            new_bits = merged & ~seen
            gained = np.any(new_bits != 0, axis=1)
            if not gained.all():
                rows, new_bits = rows[gained], new_bits[gained]
                seen = seen[gained]
            if len(rows):
                # One fancy assignment (gathered | delta) beats the
                # read-modify-write of an indexed |=.
                label[rows] = seen | new_bits
                next_adv = np.bitwise_or.reduce(new_bits, axis=0)
            else:
                next_adv = np.zeros(len(cols), dtype=np.uint64)
            next_rows = rows
            next_delta = new_bits

        # The fresh delta inherits the expanded side's masked epoch (its
        # lanes are a subset of the old delta's), so only the cost changes.
        if forward:
            front_f, delta_f, adv_f = next_rows, next_delta, next_adv
            cost_f = int((out_off[front_f + 1] - out_off[front_f]).sum())
        else:
            front_r, delta_r, adv_r = next_rows, next_delta, next_adv
            cost_r = int((in_off[front_r + 1] - in_off[front_r]).sum())

        # Early-out compaction: words with no pending lanes left stop
        # paying memory bandwidth for the rest of the sweep.
        live_words = np.flatnonzero(pending)
        if len(live_words) < len(cols):
            compactions += 1
            cols = cols[live_words]
            pending = pending[live_words]
            adv_f = adv_f[live_words]
            adv_r = adv_r[live_words]
            label_f = np.ascontiguousarray(label_f[:, live_words])
            label_r = np.ascontiguousarray(label_r[:, live_words])
            delta_f = np.ascontiguousarray(delta_f[:, live_words])
            delta_r = np.ascontiguousarray(delta_r[:, live_words])

    if budget is not None:
        budget.checkpoint(accesses - charged)

    answers = (result[lane_word] & lane_bit) != 0
    stats = BitSweepStats(lanes, words, layers, accesses, compactions)
    return [bool(a) for a in answers], stats


def csr_bit_reach(
    csr: "CSRSnapshot",
    seeds: Iterable[Tuple[int, int]],
    probes: Iterable[int],
    *,
    forward: bool = True,
    budget: Optional[Budget] = None,
) -> Tuple[Dict[int, int], BitSweepStats]:
    """Bit-parallel multi-source closure with per-lane seed masks.

    ``seeds`` are ``(vertex_id, lane_mask)`` pairs: bit ``q`` of a mask
    marks the vertex as a source for lane ``q`` (one uint64 word, so at
    most 64 lanes). The sweep runs the *one-sided* closure — forward along
    out-edges when ``forward``, along in-edges otherwise — to fixpoint,
    then reports ``{probe_id: mask}`` for every probe vertex whose label
    is non-zero. This is the shard worker's scatter–gather primitive: the
    router seeds a shard's entry vertices, probes its boundary vertices
    plus any in-shard query targets, and joins the returned masks across
    shards through the condensation DAG.

    The closure is additive over seed sets (``reach(A ∪ B) = reach(A) ∪
    reach(B)``), so a router re-entering a shard in a later round only
    needs to send seeds it has not sent before — workers keep no state
    between calls. All seed and probe vertices must exist in the snapshot
    (``KeyError`` otherwise). Budget semantics match
    :func:`csr_bit_bibfs`: checkpoints at layer boundaries, nothing kept
    on :class:`~repro.core.budget.BudgetExceeded`.
    """
    if not HAVE_NUMPY:
        raise RuntimeError("bit-parallel kernels require numpy")
    _maybe_fault("csr_bit_reach")

    seed_list = [(csr.index_of(v), m) for v, m in seeds if m]
    probe_list = list(probes)
    n = csr.num_vertices
    label = np.zeros(n, dtype=np.uint64)
    if seed_list:
        idx = np.asarray([i for i, _ in seed_list], dtype=np.int64)
        masks = np.asarray([m for _, m in seed_list], dtype=np.uint64)
        np.bitwise_or.at(label, idx, masks)
        frontier = np.unique(idx)
        delta = label[frontier]
    else:
        frontier = np.empty(0, dtype=np.int64)
        delta = label[frontier]

    lanes = int(np.bitwise_or.reduce(delta)).bit_count() if len(delta) else 0
    offsets = csr.out_offsets if forward else csr.in_offsets
    out_tgt, in_tgt = _sweep_targets(csr)
    targets = out_tgt if forward else in_tgt

    layers = 0
    accesses = 0
    charged = 0
    while len(frontier):
        if budget is not None:
            budget.checkpoint(accesses - charged)
            charged = accesses
        layers += 1
        counts = offsets[frontier + 1] - offsets[frontier]
        recv = _gather(offsets, targets, frontier)
        accesses += len(recv)
        if len(recv) == 0:
            break
        edge_src = np.repeat(np.arange(len(frontier), dtype=np.int32), counts)
        order = np.argsort(recv, kind="stable")
        sorted_recv = recv[order]
        sorted_contrib = np.take(delta, edge_src[order])
        head = np.empty(len(sorted_recv), dtype=bool)
        head[0] = True
        np.not_equal(sorted_recv[1:], sorted_recv[:-1], out=head[1:])
        bounds = np.flatnonzero(head)
        rows = sorted_recv[bounds]
        merged = np.bitwise_or.reduceat(sorted_contrib, bounds)
        seen = np.take(label, rows)
        new_bits = merged & ~seen
        gained = new_bits != 0
        if not gained.all():
            rows, new_bits = rows[gained], new_bits[gained]
            seen = seen[gained]
        if len(rows):
            label[rows] = seen | new_bits
        frontier = rows.astype(np.int64)
        delta = new_bits

    if budget is not None:
        budget.checkpoint(accesses - charged)

    out: Dict[int, int] = {}
    for v in probe_list:
        mask = int(label[csr.index_of(v)])
        if mask:
            out[v] = mask
    stats = BitSweepStats(lanes, 1, layers, accesses, 0)
    return out, stats
