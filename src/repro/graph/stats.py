"""Descriptive statistics for graph snapshots.

One call summarizes everything Tab. II reports about a graph plus the
structural quantities the cost model and the analysis lean on (degree
tail, SCC structure, reachable-pair mass). Backs ``python -m repro stats``
and the dataset-characterization tests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.community.clustering import (
    DISCERNIBLE_COMMUNITY_THRESHOLD,
    global_clustering_coefficient,
    sampled_clustering_coefficient,
)
from repro.community.powerlaw import fit_power_law_exponent
from repro.graph.closure import TransitiveClosure
from repro.graph.digraph import DynamicDiGraph
from repro.graph.scc import strongly_connected_components


@dataclass(frozen=True)
class GraphSummary:
    """A snapshot's headline statistics."""

    num_vertices: int
    num_edges: int
    average_degree: float
    max_out_degree: int
    max_in_degree: int
    num_sccs: int
    largest_scc: int
    clustering_coefficient: float
    has_discernible_communities: bool
    degree_tail_exponent: float
    reachable_pair_fraction: float

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def summarize(
    graph: DynamicDiGraph,
    exact_clustering: bool = True,
    clustering_samples: int = 20_000,
    seed: Optional[int] = 0,
) -> GraphSummary:
    """Compute a :class:`GraphSummary` for the snapshot.

    ``exact_clustering=False`` switches to wedge sampling (for larger
    graphs). The reachable-pair fraction uses the bitset transitive
    closure, so expect O(n*m/64) work.
    """
    n = graph.num_vertices
    if n == 0:
        return GraphSummary(0, 0, 0.0, 0, 0, 0, 0, 0.0, False, 3.0, 0.0)
    degrees = [graph.degree(v) for v in graph.vertices()]
    components = strongly_connected_components(graph)
    if exact_clustering:
        clustering = global_clustering_coefficient(graph)
    else:
        clustering = sampled_clustering_coefficient(
            graph, num_samples=clustering_samples, seed=seed
        )
    closure = TransitiveClosure(graph)
    pairs = closure.num_reachable_pairs()
    possible = n * (n - 1)
    return GraphSummary(
        num_vertices=n,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree,
        max_out_degree=max(graph.out_degree(v) for v in graph.vertices()),
        max_in_degree=max(graph.in_degree(v) for v in graph.vertices()),
        num_sccs=len(components),
        largest_scc=max(len(c) for c in components),
        clustering_coefficient=clustering,
        has_discernible_communities=(
            clustering >= DISCERNIBLE_COMMUNITY_THRESHOLD
        ),
        degree_tail_exponent=fit_power_law_exponent(degrees),
        reachable_pair_fraction=pairs / possible if possible else 0.0,
    )


def degree_histogram(graph: DynamicDiGraph, forward: bool = True) -> Dict[int, int]:
    """``{degree: count}`` for out- (or in-) degrees."""
    hist: Dict[int, int] = {}
    for v in graph.vertices():
        d = graph.out_degree(v) if forward else graph.in_degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def scc_size_distribution(graph: DynamicDiGraph) -> List[int]:
    """SCC sizes in descending order."""
    return sorted(
        (len(c) for c in strongly_connected_components(graph)), reverse=True
    )
