"""Traversal primitives: BFS/DFS reachability, distances, and edge-access counting.

These are the structure-agnostic tools the paper contrasts IFCA against
(Sec. IV). ``is_reachable_bfs`` is the trusted ground-truth oracle used
throughout the test suite.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from repro.graph.digraph import DynamicDiGraph


def bfs_reachable(graph: DynamicDiGraph, source: int) -> Set[int]:
    """All vertices reachable from ``source`` (including itself)."""
    return _directional_reachable(graph, source, forward=True)


def reverse_bfs_reachable(graph: DynamicDiGraph, target: int) -> Set[int]:
    """All vertices that can reach ``target`` (including itself)."""
    return _directional_reachable(graph, target, forward=False)


def _directional_reachable(
    graph: DynamicDiGraph, start: int, forward: bool
) -> Set[int]:
    if start not in graph:
        return set()
    visited = {start}
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u, forward):
            if v not in visited:
                visited.add(v)
                queue.append(v)
    return visited


def is_reachable_bfs(graph: DynamicDiGraph, source: int, target: int) -> bool:
    """Ground-truth reachability via unidirectional BFS with early exit."""
    if source not in graph or target not in graph:
        return False
    if source == target:
        return True
    visited = {source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.out_neighbors(u):
            if v == target:
                return True
            if v not in visited:
                visited.add(v)
                queue.append(v)
    return False


def bfs_distances(
    graph: DynamicDiGraph, source: int, forward: bool = True
) -> Dict[int, int]:
    """Hop distances from ``source`` to every reachable vertex."""
    if source not in graph:
        return {}
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph.neighbors(u, forward):
            if v not in dist:
                dist[v] = du + 1
                queue.append(v)
    return dist


def bfs_edge_access_trace(
    graph: DynamicDiGraph, source: int, target: Optional[int] = None
) -> List[int]:
    """The sequence of visited vertices, one entry per *edge access*.

    Used by the Fig. 1 reproduction, where the x-axis is the number of edge
    accesses. Each scan of an out-neighbor counts as one access; the list
    entry is the endpoint of the accessed edge. Stops early when ``target``
    is accessed.
    """
    trace: List[int] = []
    if source not in graph:
        return trace
    visited = {source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.out_neighbors(u):
            trace.append(v)
            if v == target:
                return trace
            if v not in visited:
                visited.add(v)
                queue.append(v)
    return trace


def dfs_preorder(
    graph: DynamicDiGraph, source: int, forward: bool = True
) -> List[int]:
    """Iterative DFS preorder from ``source``."""
    if source not in graph:
        return []
    order: List[int] = []
    visited = {source}
    stack = [source]
    while stack:
        u = stack.pop()
        order.append(u)
        for v in graph.neighbors(u, forward):
            if v not in visited:
                visited.add(v)
                stack.append(v)
    return order


def topological_order(graph: DynamicDiGraph) -> List[int]:
    """Kahn topological order; raises ``ValueError`` if the graph has a cycle."""
    indeg = {v: graph.in_degree(v) for v in graph.vertices()}
    queue = deque(v for v, d in indeg.items() if d == 0)
    order: List[int] = []
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in graph.out_neighbors(u):
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    if len(order) != graph.num_vertices:
        raise ValueError("graph contains a cycle; no topological order exists")
    return order


def estimate_diameter(
    graph: DynamicDiGraph, samples: Iterable[int]
) -> int:
    """A lower-bound diameter estimate: max BFS eccentricity over samples.

    Used by the ARROW re-implementation to size its walk length.
    """
    best = 0
    for s in samples:
        dist = bfs_distances(graph, s)
        if dist:
            best = max(best, max(dist.values()))
    return best
