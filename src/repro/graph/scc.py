"""Strongly connected components and condensation.

The index-based competitors (TOL, IP, DAGGER) all operate on the DAG
obtained by condensing the graph's SCCs (Sec. II). Tarjan's algorithm is
implemented iteratively so that deep graphs do not hit Python's recursion
limit.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.digraph import DynamicDiGraph


def strongly_connected_components(graph: DynamicDiGraph) -> List[List[int]]:
    """Tarjan's SCC algorithm, iterative formulation.

    Returns the components in reverse topological order of the condensation
    (a property of Tarjan's algorithm that :func:`condensation` relies on).
    """
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    components: List[List[int]] = []
    counter = 0

    for root in list(graph.vertices()):
        if root in index_of:
            continue
        # Each work item is (vertex, iterator position into its adjacency).
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            v, pos = work[-1]
            if pos == 0:
                index_of[v] = counter
                lowlink[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            recursed = False
            nbrs = graph.out_neighbors(v)
            while pos < len(nbrs):
                w = nbrs[pos]
                pos += 1
                if w not in index_of:
                    work[-1] = (v, pos)
                    work.append((w, 0))
                    recursed = True
                    break
                if on_stack.get(w, False):
                    lowlink[v] = min(lowlink[v], index_of[w])
            if recursed:
                continue
            work.pop()
            if lowlink[v] == index_of[v]:
                component: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == v:
                        break
                components.append(component)
            if work:
                parent, _ = work[-1]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
    return components


def condensation(
    graph: DynamicDiGraph,
) -> Tuple[DynamicDiGraph, Dict[int, int], List[List[int]]]:
    """Condense SCCs into a DAG.

    Returns ``(dag, scc_of, components)`` where ``scc_of[v]`` maps each
    original vertex to its component id and ``components[cid]`` lists the
    members of component ``cid``. The DAG is simple: parallel inter-SCC
    edges collapse into one.
    """
    components = strongly_connected_components(graph)
    scc_of: Dict[int, int] = {}
    for cid, comp in enumerate(components):
        for v in comp:
            scc_of[v] = cid
    dag = DynamicDiGraph()
    for cid in range(len(components)):
        dag.add_vertex(cid)
    for u, v in graph.edges():
        cu, cv = scc_of[u], scc_of[v]
        if cu != cv:
            dag.add_edge(cu, cv)
    return dag, scc_of, components


def is_dag(graph: DynamicDiGraph) -> bool:
    """True iff every SCC is a singleton without a self-loop."""
    for comp in strongly_connected_components(graph):
        if len(comp) > 1:
            return False
        v = comp[0]
        if graph.has_edge(v, v):
            return False
    return True
