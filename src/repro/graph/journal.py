"""Write-ahead update journal: crash-safe durability for dynamic graphs.

The in-memory :class:`~repro.graph.digraph.DynamicDiGraph` is the only
authoritative state the serving engine has — a process crash loses every
update applied since start. This module adds the classic write-ahead
discipline without giving up the index-free update cost: each effective
mutation appends one JSON line to an append-only journal, and recovery
replays the journal (optionally on top of a checkpoint edge list) to
rebuild the exact pre-crash graph, version counter included.

File format
-----------
One JSON object per line (JSONL). The first line is a header::

    {"op": "open", "ver": <graph version at open>, "ckpt": <path|null>}

followed by mutation records stamped with the graph version *after* the
mutation applied::

    {"op": "+", "u": 3, "v": 7, "ver": 1042}
    {"op": "-", "u": 3, "v": 7, "ver": 1043}

Version stamps make replay self-verifying: applying the same operations
to the same base state reproduces the same version sequence (the graph's
counter bumps deterministically), so a final mismatch means the base
graph does not match the journal and recovery refuses to hand back a
silently wrong graph.

Durability model
----------------
Appends are buffered and fsynced every ``fsync_every`` records (1 =
classic synchronous WAL, the default trades the tail of the batch for
throughput). A torn final line — the crash landed mid-append — is
expected and tolerated: replay stops at the first undecodable *final*
line. An undecodable line with valid records after it is real corruption
and raises :class:`JournalCorrupt`.

Compaction
----------
:meth:`UpdateJournal.checkpoint` writes the current graph as an atomic
edge list (temp file + fsync + rename, see
:func:`repro.graph.io.write_edge_list`) and restarts the journal with a
header pointing at it, so the journal never grows without bound and
recovery cost is proportional to updates since the last checkpoint.

Tailing
-------
:class:`JournalTailer` turns the journal into a *stream*: it reads
records incrementally as a concurrent writer appends them, which is what
primary->replica replication ships over the wire (``repro.net``). The
tailer is torn-tail aware (an incomplete final line stays buffered until
the writer finishes it), survives checkpoint compaction mid-tail (it
drains the replaced file, then follows the rename), and deduplicates by
version stamp so reopening never re-yields a record. A compaction that
discarded records the tailer had not consumed yet raises
:class:`JournalGap` — the subscriber must fall back to a full snapshot.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.graph.digraph import DynamicDiGraph
from repro.graph.io import read_edge_list, write_edge_list

PathLike = Union[str, Path]


class JournalError(RuntimeError):
    """Base class for journal failures."""


class JournalCorrupt(JournalError):
    """The journal has an undecodable record before its final line."""


class JournalReplayError(JournalError):
    """Replay produced a graph whose version disagrees with the records
    (the supplied base graph does not match the journal's base state)."""


class JournalGap(JournalError):
    """The journal no longer holds the records a tailer needs: compaction
    discarded versions past the tailer's resume point. Recoverable only by
    re-seeding from a full snapshot."""


@dataclass
class ReplayResult:
    """What :func:`replay` recovered."""

    #: The rebuilt graph, version counter realigned to the last record.
    graph: DynamicDiGraph
    #: The last durably recorded version (== ``graph.version``).
    version: int
    #: Mutation records applied.
    applied: int
    #: Whether a torn (partially written) final line was discarded.
    torn_tail: bool
    #: The checkpoint path named by the header, if any.
    checkpoint: Optional[str] = None


class UpdateJournal:
    """An append-only write-ahead journal for one dynamic graph.

    Opening an empty (or absent) file writes the header; opening an
    existing journal resumes appending after its last record. The journal
    is oblivious to *who* mutates the graph — callers append a record for
    every effective mutation they apply, stamped with the resulting
    graph version (the serving engine does this inside its write lock, so
    journal order is exactly version order).
    """

    def __init__(
        self,
        path: PathLike,
        fsync_every: int = 64,
        graph_version: int = 0,
        checkpoint: Optional[PathLike] = None,
    ) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self._pending = 0
        self._records = 0
        self._syncs = 0
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._handle = open(self.path, "a", encoding="utf-8")
        if fresh:
            self._write_header(graph_version, checkpoint)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def record_insert(self, u: int, v: int, version: int) -> None:
        """Journal an applied edge insertion (``version`` = post-apply)."""
        self._append({"op": "+", "u": u, "v": v, "ver": version})

    def record_delete(self, u: int, v: int, version: int) -> None:
        """Journal an applied edge deletion (``version`` = post-apply)."""
        self._append({"op": "-", "u": u, "v": v, "ver": version})

    def _append(self, record: dict) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._records += 1
        self._pending += 1
        if self._pending >= self.fsync_every:
            self.flush()

    def _write_header(
        self, version: int, checkpoint: Optional[PathLike]
    ) -> None:
        header = {
            "op": "open",
            "ver": version,
            "ckpt": str(checkpoint) if checkpoint is not None else None,
        }
        self._handle.write(json.dumps(header, separators=(",", ":")) + "\n")
        self.flush()

    def flush(self) -> None:
        """Force buffered records to stable storage (fsync)."""
        self._handle.flush()
        os.fsync(self._handle.fileno())
        if self._pending:
            self._syncs += 1
        self._pending = 0

    def publish(self) -> None:
        """Make buffered records visible to tailers without an fsync.

        Replication wants freshness, durability wants batched fsyncs;
        flushing the userspace buffer (no sync) serves the first without
        paying for the second — a :class:`JournalTailer` on the same host
        sees the records immediately, and the ``fsync_every`` durability
        contract is unchanged.
        """
        if not self._handle.closed:
            self._handle.flush()

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def checkpoint(self, graph: DynamicDiGraph, snapshot_path: PathLike) -> None:
        """Compact: snapshot ``graph`` atomically and restart the journal.

        Crash-ordering: the snapshot is durably renamed into place
        *before* the journal is truncated, and the truncated journal is
        itself replaced atomically — at every instant either the old
        journal (still replayable from its own base) or the new
        journal + snapshot pair exists.
        """
        snapshot_path = Path(snapshot_path)
        write_edge_list(graph, snapshot_path, atomic=True)
        self.flush()
        self._handle.close()
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            header = {
                "op": "open",
                "ver": graph.version,
                "ckpt": str(snapshot_path),
            }
            handle.write(json.dumps(header, separators=(",", ":")) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._pending = 0

    # ------------------------------------------------------------------
    # Lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._handle.closed:
            return
        self.flush()
        self._handle.close()

    def __enter__(self) -> "UpdateJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def records_written(self) -> int:
        return self._records

    @property
    def sync_count(self) -> int:
        """Batched fsyncs issued (excluding record-free flushes)."""
        return self._syncs


def replay(
    path: PathLike, base_graph: Optional[DynamicDiGraph] = None
) -> ReplayResult:
    """Rebuild the graph a journal describes.

    ``base_graph`` supplies the journal's base state (the graph as it was
    at header time); when omitted, the header's checkpoint path (resolved
    relative to the journal's directory) is loaded, and failing that the
    base is the empty graph — correct for journals opened at version 0.

    The rebuilt graph's version counter is realigned to the last record's
    stamp via :meth:`~repro.graph.digraph.DynamicDiGraph.restore_version`,
    so version-keyed derived state (cache entries, pruner stamps) written
    before the crash compares correctly after recovery.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise JournalCorrupt(f"{path}: empty journal (missing header)")

    records = []
    torn = False
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            if i == len(lines) - 1:
                torn = True  # crash mid-append; the record never committed
                break
            raise JournalCorrupt(f"{path}: undecodable record at line {i + 1}")

    header = records[0]
    if header.get("op") != "open":
        raise JournalCorrupt(f"{path}: first record is not a header")
    base_version = int(header.get("ver", 0))
    ckpt = header.get("ckpt")

    graph = base_graph
    if graph is None and ckpt:
        ckpt_path = Path(ckpt)
        if not ckpt_path.is_absolute():
            ckpt_path = path.parent / ckpt_path
        graph = read_edge_list(ckpt_path)
    if graph is None:
        graph = DynamicDiGraph()
    if graph.version > base_version:
        raise JournalReplayError(
            f"{path}: base graph at version {graph.version} is ahead of the "
            f"journal's base version {base_version}"
        )
    graph.restore_version(base_version)

    applied = 0
    last_version = base_version
    for record in records[1:]:
        op = record.get("op")
        u, v, ver = record["u"], record["v"], record["ver"]
        if ver <= last_version:
            raise JournalCorrupt(
                f"{path}: non-monotone version stamp {ver} after {last_version}"
            )
        if op == "+":
            graph.add_edge(u, v)
        elif op == "-":
            graph.remove_edge(u, v)
        else:
            raise JournalCorrupt(f"{path}: unknown op {op!r}")
        applied += 1
        last_version = ver

    if graph.version > last_version:
        raise JournalReplayError(
            f"{path}: replay reached version {graph.version} past the last "
            f"record's {last_version} — base graph does not match the journal"
        )
    graph.restore_version(last_version)
    return ReplayResult(
        graph=graph,
        version=last_version,
        applied=applied,
        torn_tail=torn,
        checkpoint=ckpt,
    )


class JournalTailer:
    """Incrementally read a journal that another thread/process appends to.

    ``poll()`` returns every *complete, new* mutation record since the
    last call, in order, each exactly once:

    * a torn tail (the writer is mid-append, or the crash model's
      arbitrary byte boundary) stays buffered until the line completes —
      a record is never yielded partially and never yielded twice;
    * headers are consumed silently, but a header whose base version is
      ahead of the tailer's resume point means compaction discarded
      records this tailer still needed — that raises :class:`JournalGap`;
    * compaction mid-tail (the file is atomically replaced) is followed:
      the tailer drains the replaced file it still holds open, reopens
      the new one, and version-stamp dedup skips anything already seen;
    * records at or below ``after_version`` are skipped, which makes
      reconnect/resume exact: a replica that reconnects with its
      watermark never re-applies a record.

    The tailer never fsyncs and never writes; it is safe against a live
    :class:`UpdateJournal` on the same path (pair it with
    :meth:`UpdateJournal.publish` for sub-batch freshness).
    """

    def __init__(self, path: PathLike, after_version: int = 0) -> None:
        self.path = Path(path)
        self.last_version = after_version
        self._handle = None
        self._inode: Optional[int] = None
        self._buffer = b""
        self._open()

    def _open(self) -> None:
        if self._handle is not None:
            self._handle.close()
        self._handle = open(self.path, "rb")
        self._inode = os.fstat(self._handle.fileno()).st_ino
        self._buffer = b""

    def _consume(self, data: bytes, out: list) -> None:
        self._buffer += data
        while True:
            newline = self._buffer.find(b"\n")
            if newline < 0:
                return  # torn tail: wait for the writer to finish the line
            line = self._buffer[:newline]
            self._buffer = self._buffer[newline + 1:]
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A *complete* line that does not decode is corruption,
                # not a torn tail — the newline proves the writer was done.
                raise JournalCorrupt(
                    f"{self.path}: undecodable record in tail"
                )
            if record.get("op") == "open":
                base = int(record.get("ver", 0))
                if base > self.last_version:
                    raise JournalGap(
                        f"{self.path}: compacted to base version {base} past "
                        f"tail position {self.last_version}"
                    )
                continue
            ver = record.get("ver")
            if ver is None:
                raise JournalCorrupt(f"{self.path}: record without version")
            if ver <= self.last_version:
                continue  # already streamed (reopen / resume overlap)
            out.append(record)
            self.last_version = ver

    def poll(self) -> list:
        """All complete records appended since the last poll (maybe [])."""
        if self._handle is None:
            raise JournalError("tailer is closed")
        records: list = []
        try:
            stat = os.stat(self.path)
        except FileNotFoundError:
            stat = None
        rotated = stat is None or stat.st_ino != self._inode
        # Drain whatever the current handle can still see. After an
        # atomic compaction rename the old inode stays readable through
        # this handle, so nothing written before the rename is lost.
        self._consume(self._handle.read(), records)
        if rotated and stat is not None:
            # checkpoint() flushes before renaming, so the replaced file
            # ended on a record boundary; a leftover partial line would be
            # a record that never committed — drop it with the old file.
            self._open()
            self._consume(self._handle.read(), records)
        return records

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JournalTailer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
