"""Incremental condensation (DAG) maintenance, in the style of DAGGER.

The index-based competitors (TOL, IP, DAGGER) are defined over the DAG of
strongly connected components. On a dynamic graph the condensation itself
must be maintained: an edge insertion may merge a chain of SCCs into one,
and an edge deletion inside an SCC may split it apart (Yildirim et al.,
DAGGER, 2013). :class:`DynamicDAG` keeps the original graph, the
vertex-to-component mapping, the condensation DAG, and inter-component edge
multiplicities consistent under both operations.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.graph.digraph import DynamicDiGraph
from repro.graph.scc import strongly_connected_components


class DynamicDAG:
    """A directed graph together with its incrementally maintained condensation.

    Component ids are allocated from a private counter and never reused, so
    downstream indexes can detect staleness by id. Callbacks ``on_merge`` /
    ``on_split`` let an index (e.g. DAGGER's interval labels) react to
    condensation changes.
    """

    def __init__(self, graph: Optional[DynamicDiGraph] = None) -> None:
        self.graph = graph if graph is not None else DynamicDiGraph()
        self.dag = DynamicDiGraph()
        self.scc_of: Dict[int, int] = {}
        self.members: Dict[int, Set[int]] = {}
        self._edge_multiplicity: Dict[Tuple[int, int], int] = {}
        self._next_cid = 0
        self.merge_count = 0
        self.split_count = 0
        self.on_merge: Optional[Callable[[Set[int], int], None]] = None
        self.on_split: Optional[Callable[[int, List[int]], None]] = None
        if graph is not None:
            self._build_from_scratch()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _fresh_cid(self) -> int:
        cid = self._next_cid
        self._next_cid += 1
        return cid

    def _build_from_scratch(self) -> None:
        self.dag = DynamicDiGraph()
        self.scc_of.clear()
        self.members.clear()
        self._edge_multiplicity.clear()
        for comp in strongly_connected_components(self.graph):
            cid = self._fresh_cid()
            self.dag.add_vertex(cid)
            self.members[cid] = set(comp)
            for v in comp:
                self.scc_of[v] = cid
        for u, v in self.graph.edges():
            cu, cv = self.scc_of[u], self.scc_of[v]
            if cu != cv:
                self._add_dag_edge(cu, cv)

    def _add_dag_edge(self, cu: int, cv: int) -> None:
        key = (cu, cv)
        count = self._edge_multiplicity.get(key, 0)
        self._edge_multiplicity[key] = count + 1
        if count == 0:
            self.dag.add_edge(cu, cv)

    def _remove_dag_edge(self, cu: int, cv: int) -> None:
        key = (cu, cv)
        count = self._edge_multiplicity[key] - 1
        if count == 0:
            del self._edge_multiplicity[key]
            self.dag.remove_edge(cu, cv)
        else:
            self._edge_multiplicity[key] = count

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def component_of(self, v: int) -> int:
        """The condensation vertex containing original vertex ``v``."""
        return self.scc_of[v]

    def same_component(self, u: int, v: int) -> bool:
        return self.scc_of.get(u) == self.scc_of.get(v) and u in self.scc_of

    def _dag_reaches(self, src: int, dst: int) -> bool:
        if src == dst:
            return True
        visited = {src}
        queue = deque([src])
        while queue:
            c = queue.popleft()
            for w in self.dag.out_neighbors(c):
                if w == dst:
                    return True
                if w not in visited:
                    visited.add(w)
                    queue.append(w)
        return False

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> None:
        if v in self.scc_of:
            return
        self.graph.add_vertex(v)
        cid = self._fresh_cid()
        self.dag.add_vertex(cid)
        self.members[cid] = {v}
        self.scc_of[v] = cid

    def insert_edge(self, u: int, v: int) -> bool:
        """Insert ``(u, v)``, merging SCCs if a cycle is created.

        Returns ``True`` if the edge was new.
        """
        self.add_vertex(u)
        self.add_vertex(v)
        if not self.graph.add_edge(u, v):
            return False
        cu, cv = self.scc_of[u], self.scc_of[v]
        if cu == cv:
            return True
        if self._dag_reaches(cv, cu):
            self._merge_cycle(cu, cv)
        else:
            self._add_dag_edge(cu, cv)
        return True

    def delete_edge(self, u: int, v: int) -> bool:
        """Delete ``(u, v)``, splitting the containing SCC if it breaks apart."""
        if not self.graph.remove_edge(u, v):
            return False
        cu, cv = self.scc_of[u], self.scc_of[v]
        if cu != cv:
            self._remove_dag_edge(cu, cv)
        else:
            self._maybe_split(cu)
        return True

    # ------------------------------------------------------------------
    # Merge / split internals
    # ------------------------------------------------------------------
    def _merge_cycle(self, cu: int, cv: int) -> None:
        """Merge every component on a ``cv -> ... -> cu`` DAG path (plus the
        new back edge ``cu -> cv``) into one component."""
        forward = self._dag_closure(cv, forward=True, stop_at=cu)
        backward = self._dag_closure(cu, forward=False, restrict=forward)
        to_merge = forward & backward  # contains both cu and cv
        new_cid = self._fresh_cid()
        self.dag.add_vertex(new_cid)
        # Pass 1: collect the surviving edge multiplicities before touching
        # the DAG. Edges internal to the merged set are popped (via their
        # source side) and vanish; boundary edges are redirected to new_cid.
        incident: Dict[Tuple[int, int], int] = {}
        for cid in to_merge:
            for w in self.dag.out_neighbors(cid):
                mult = self._edge_multiplicity.pop((cid, w))
                if w not in to_merge:
                    key = (new_cid, w)
                    incident[key] = incident.get(key, 0) + mult
            for w in self.dag.in_neighbors(cid):
                if w in to_merge:
                    continue  # internal edge; popped from its source side
                mult = self._edge_multiplicity.pop((w, cid))
                key = (w, new_cid)
                incident[key] = incident.get(key, 0) + mult
        # Pass 2: rebuild membership and the DAG.
        merged_members: Set[int] = set()
        for cid in to_merge:
            merged_members |= self.members.pop(cid)
            self.dag.remove_vertex(cid)
        for v in merged_members:
            self.scc_of[v] = new_cid
        self.members[new_cid] = merged_members
        for (a, b), mult in incident.items():
            self._edge_multiplicity[(a, b)] = mult
            self.dag.add_edge(a, b)
        self.merge_count += 1
        if self.on_merge is not None:
            self.on_merge(to_merge, new_cid)

    def _dag_closure(
        self,
        start: int,
        forward: bool,
        stop_at: Optional[int] = None,
        restrict: Optional[Set[int]] = None,
    ) -> Set[int]:
        """BFS closure over the DAG, optionally restricted to a vertex set."""
        visited = {start}
        queue = deque([start])
        while queue:
            c = queue.popleft()
            if c == stop_at:
                continue
            for w in self.dag.neighbors(c, forward):
                if restrict is not None and w not in restrict:
                    continue
                if w not in visited:
                    visited.add(w)
                    queue.append(w)
        return visited

    def _maybe_split(self, cid: int) -> None:
        """Recompute the SCCs inside component ``cid`` after an internal
        edge deletion, splitting it if it is no longer strongly connected."""
        member_set = self.members[cid]
        if len(member_set) == 1:
            return
        sub = self.graph.subgraph(member_set)
        parts = strongly_connected_components(sub)
        if len(parts) == 1:
            return
        # Drop the old component and its incident DAG edges.
        for w in list(self.dag.out_neighbors(cid)):
            del self._edge_multiplicity[(cid, w)]
        for w in list(self.dag.in_neighbors(cid)):
            del self._edge_multiplicity[(w, cid)]
        self.dag.remove_vertex(cid)
        del self.members[cid]
        new_cids: List[int] = []
        for comp in parts:
            new_cid = self._fresh_cid()
            new_cids.append(new_cid)
            self.dag.add_vertex(new_cid)
            self.members[new_cid] = set(comp)
            for v in comp:
                self.scc_of[v] = new_cid
        # Re-derive every DAG edge incident to the split members from the
        # original graph (both among the parts and to/from the outside).
        for v in member_set:
            for w in self.graph.out_neighbors(v):
                a, b = self.scc_of[v], self.scc_of[w]
                if a != b:
                    self._add_dag_edge(a, b)
            for w in self.graph.in_neighbors(v):
                if w in member_set:
                    continue  # counted above from the member side
                a, b = self.scc_of[w], self.scc_of[v]
                if a != b:
                    self._add_dag_edge(a, b)
        self.split_count += 1
        if self.on_split is not None:
            self.on_split(cid, new_cids)

    # ------------------------------------------------------------------
    # Consistency checking (used by the test suite)
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Raise ``AssertionError`` if the maintained condensation disagrees
        with one recomputed from scratch."""
        expected = strongly_connected_components(self.graph)
        expected_sets = {frozenset(comp) for comp in expected}
        actual_sets = {frozenset(mem) for mem in self.members.values()}
        assert expected_sets == actual_sets, "SCC membership diverged"
        expected_edges: Dict[Tuple[int, int], int] = {}
        for u, v in self.graph.edges():
            cu, cv = self.scc_of[u], self.scc_of[v]
            if cu != cv:
                expected_edges[(cu, cv)] = expected_edges.get((cu, cv), 0) + 1
        assert expected_edges == self._edge_multiplicity, (
            "DAG edge multiplicities diverged"
        )
        for (cu, cv) in expected_edges:
            assert self.dag.has_edge(cu, cv)
        assert self.dag.num_edges == len(expected_edges)
