"""Incremental DL/BL reachability labels — the serving ladder's third pruner.

DBL (Lyu et al., arXiv:2101.09441) answers most reachability queries from
two k-bit labels per vertex: a *descendant* label ``DL[v]`` (the OR of
hash seeds over everything ``v`` reaches, itself included) and an
*ancestor* label ``BL[v]`` (the same over everything that reaches ``v``).
Two one-sided rules follow directly:

* **positive** — word 0 is a *landmark* word holding one exact bit for
  each of up to 64 high-degree hub vertices. ``DL[s][0] & BL[t][0] != 0``
  proves ``s`` reaches some landmark that reaches ``t`` — an exact
  positive, no search.
* **negative** — the remaining words are bloom words (one hashed bit per
  vertex id). Reachability implies containment — ``reach(s) ⊇ reach(t)``
  when ``s`` reaches ``t`` — so ``DL[t] & ~DL[s] != 0`` (``t`` reaches a
  seed ``s`` provably does not) or ``BL[s] & ~BL[t] != 0`` is an exact
  negative.

Labels here are ``(n, k)`` uint64 numpy matrices, so the whole tier is
batch-native: one gather-and-AND over the packed matrices prefilters a
1024-pair batch before any bit-parallel wave is planned
(:func:`LabelIndex.query_many`).

Dynamics follow DBL's insert side and the TOL-style lazy discipline on
the delete side:

* **insert** is monotone: ``add_edge(u, v)`` ORs ``DL[v]`` into ``u`` and
  its ancestors (symmetrically ``BL[u]`` into ``v`` and its descendants),
  early-stopping where the carry is already contained. A frontier cutoff
  bounds the touch count; tripping it leaves the labels *under*-
  approximated, which the global ``missing`` flag records — negatives
  are then suppressed (they would be unsound) while positives stay exact
  (every surviving bit is real).
* **delete** can only *shrink* reach sets, so stale labels would
  over-approximate — unsound in the positive direction. ``remove_edge(u,
  v)`` marks the exact affected region dirty instead of repairing it:
  the post-delete ancestors of ``u`` (their ``DL`` is suspect —
  ``dirty_out``) and the post-delete descendants of ``v`` (``BL`` —
  ``dirty_in``). Dirty rows abstain from the rules that depend on them;
  everything else keeps answering.
* **lazy rebuild** — :meth:`LabelIndex.observe_query` repairs on demand:
  a *partial* rebuild recomputes only the dirty rows (Tarjan over the
  induced dirty subgraph, sinks first, pulling clean neighbours' exact
  rows), escalating to a *full* vectorized rebuild once the dirty
  fraction passes ``staleness_threshold`` or the labels went ``missing``.
  Rebuilds swap a fresh :class:`_LabelState` atomically, so concurrent
  readers keep a coherent snapshot.

Soundness invariants (the property suite in ``tests/test_labels.py``
asserts both against a BFS oracle under churn):

* **INV1** — every *clean* row is exact for the current graph version
  (unless ``missing``, in which case rows are under-approximations).
* **INV2** — the dirty sets are reach-closed: every vertex that reaches a
  ``dirty_out`` vertex is itself ``dirty_out`` (symmetrically
  ``dirty_in`` under "reached-from"). This is what makes insert
  propagation's early-stop at a dirty vertex safe, and what guarantees
  the partial rebuild's dirty subgraph never cuts an SCC in half.

The tier is numpy-only by design (the labels *are* the packed words);
:func:`labels_available` is ``False`` under ``REPRO_NO_NUMPY`` and the
service simply skips the tier.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.graph.digraph import DynamicDiGraph
from repro.graph.kernels import HAVE_NUMPY
from repro.graph.scc import condensation, strongly_connected_components

if HAVE_NUMPY:
    import numpy as np
else:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None  # type: ignore[assignment]

Pair = Tuple[int, int]

#: Knuth's multiplicative hash constant — the same bucket hash the DBL
#: baseline uses, so the two implementations disagree only in layout.
_HASH_MULT = 2654435761
_WORD_BITS = 64
_U64_MASK = (1 << 64) - 1


def labels_available() -> bool:
    """True when the numpy label tier can exist in this process."""
    return HAVE_NUMPY


class _LabelState:
    """One immutable-shape label snapshot (arrays mutate in place only
    under the service write lock; rebuilds swap whole states)."""

    __slots__ = (
        "version",
        "ids",
        "row",
        "dl",
        "bl",
        "dirty_out",
        "dirty_in",
        "num_dirty_out",
        "num_dirty_in",
        "missing",
    )

    def __init__(self, version, ids, row, dl, bl) -> None:
        self.version = version
        self.ids = ids
        self.row = row
        self.dl = dl
        self.bl = bl
        self.dirty_out = np.zeros(len(ids), dtype=bool)
        self.dirty_in = np.zeros(len(ids), dtype=bool)
        self.num_dirty_out = 0
        self.num_dirty_in = 0
        self.missing = False


class LabelIndex:
    """Versioned DL/BL label matrices over one :class:`DynamicDiGraph`.

    All mutating entry points (``note_insert`` / ``note_delete`` /
    ``note_vertex`` / ``invalidate``) must run under the owning service's
    write lock; ``check`` / ``query_many`` / ``observe_query`` run under
    its read lock. The index never takes the service lock itself.

    Parameters
    ----------
    label_bits:
        Total bits per side per vertex; a multiple of 64, at least 64.
        Word 0 is the exact landmark word; the rest are bloom words.
    staleness_threshold:
        Dirty-row fraction past which :meth:`observe_query` abandons
        partial repair and rebuilds from scratch.
    insert_frontier_limit:
        Vertices one insert propagation may touch before giving up and
        raising the ``missing`` flag (negatives off until rebuild).
    delete_dirty_limit:
        Vertices one delete may mark dirty before conservatively marking
        every row dirty.
    rebuild_cooldown:
        Stale-hit queries required before a rebuild is attempted, so a
        churn burst does not rebuild per query.
    landmarks:
        Pin the landmark set (tests compare incremental against fresh
        builds bit for bit; a fresh build would otherwise re-rank hubs).
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        *,
        label_bits: int = 256,
        staleness_threshold: float = 0.25,
        insert_frontier_limit: int = 4096,
        delete_dirty_limit: int = 4096,
        rebuild_cooldown: int = 64,
        landmarks: Optional[Iterable[int]] = None,
        build: bool = True,
    ) -> None:
        if np is None:
            raise RuntimeError("the label tier requires numpy")
        if label_bits < _WORD_BITS or label_bits % _WORD_BITS:
            raise ValueError("label_bits must be a positive multiple of 64")
        if not 0 < staleness_threshold <= 1:
            raise ValueError("staleness_threshold must be in (0, 1]")
        self._graph = graph
        self.words = label_bits // _WORD_BITS
        self.staleness_threshold = staleness_threshold
        self.insert_frontier_limit = max(1, insert_frontier_limit)
        self.delete_dirty_limit = max(1, delete_dirty_limit)
        self.rebuild_cooldown = max(1, rebuild_cooldown)
        self._pinned_landmarks = (
            list(landmarks) if landmarks is not None else None
        )
        self._landmark_bit: Dict[int, int] = {}
        self._rebuild_mutex = threading.Lock()
        self._demand = 0
        self.updates = 0
        self.full_rebuilds = 0
        self.partial_rebuilds = 0
        self.stale_abstains = 0
        self._state: Optional[_LabelState] = None
        if build:
            self._state = self._build_state()

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------
    def _choose_landmarks(self) -> None:
        if self._pinned_landmarks is not None:
            chosen = [
                v for v in self._pinned_landmarks if v in self._graph
            ][:_WORD_BITS]
        else:
            g = self._graph
            chosen = sorted(
                g.vertices(),
                key=lambda v: (-(g.out_degree(v) + g.in_degree(v)), v),
            )[:_WORD_BITS]
        self._landmark_bit = {v: i for i, v in enumerate(chosen)}

    def _bloom_index(self, v: int) -> int:
        """Hashed bit position in the bloom region, matching the
        vectorized uint64 arithmetic exactly (wrap at 2**64)."""
        nbits = _WORD_BITS * (self.words - 1)
        return ((v * _HASH_MULT) & _U64_MASK) % nbits

    def _seed_of(self, v: int):
        """One vertex's seed row (the scalar twin of :meth:`_seed_matrix`)."""
        seed = np.zeros(self.words, dtype=np.uint64)
        bit = self._landmark_bit.get(v)
        if bit is not None:
            seed[0] = np.uint64(1 << bit)
        if self.words > 1:
            h = self._bloom_index(v)
            seed[1 + h // _WORD_BITS] |= np.uint64(1 << (h % _WORD_BITS))
        return seed

    def _seed_matrix(self, ids, row):
        n = len(ids)
        seeds = np.zeros((n, self.words), dtype=np.uint64)
        for v, bit in self._landmark_bit.items():
            r = row.get(v)
            if r is not None:
                seeds[r, 0] |= np.uint64(1 << bit)
        if self.words > 1 and n:
            nbits = np.uint64(_WORD_BITS * (self.words - 1))
            h = (ids.astype(np.uint64) * np.uint64(_HASH_MULT)) % nbits
            word = (np.uint64(1) + h // np.uint64(_WORD_BITS)).astype(
                np.int64
            )
            bits = np.left_shift(np.uint64(1), h % np.uint64(_WORD_BITS))
            np.bitwise_or.at(seeds, (np.arange(n), word), bits)
        return seeds

    # ------------------------------------------------------------------
    # Full vectorized build
    # ------------------------------------------------------------------
    def _build_state(self) -> _LabelState:
        """Seed + two level-grouped OR sweeps over the condensation DAG.

        Tarjan emits components in reverse topological order, so longest-
        path-from-source levels come from one pass over ``C-1 .. 0``; the
        sweeps then process DAG edges grouped by level — descendants'
        words flow to ancestors (DL) in descending source level, and the
        reverse (BL) in ascending target level — with one
        ``np.bitwise_or.at`` scatter per level group.
        """
        graph = self._graph
        version = graph.version
        self._choose_landmarks()
        ids_list = sorted(graph.vertices())
        n = len(ids_list)
        ids = np.asarray(ids_list, dtype=np.int64)
        row = {v: i for i, v in enumerate(ids_list)}
        if n == 0:
            empty = np.zeros((0, self.words), dtype=np.uint64)
            return _LabelState(version, ids, row, empty, empty.copy())
        seeds = self._seed_matrix(ids, row)
        dag, scc_of, components = condensation(graph)
        num_comps = len(components)
        comp_of_row = np.empty(n, dtype=np.int64)
        for cid, comp in enumerate(components):
            for v in comp:
                comp_of_row[row[v]] = cid
        comp_seed = np.zeros((num_comps, self.words), dtype=np.uint64)
        np.bitwise_or.at(comp_seed, comp_of_row, seeds)

        edges = list(dag.edges())
        dl_comp = comp_seed.copy()
        bl_comp = comp_seed.copy()
        if edges:
            level = [0] * num_comps
            for cid in range(num_comps - 1, -1, -1):
                best = 0
                for pred in dag.in_neighbors(cid):
                    lp = level[pred] + 1
                    if lp > best:
                        best = lp
                level[cid] = best
            src = np.fromiter(
                (e[0] for e in edges), dtype=np.int64, count=len(edges)
            )
            dst = np.fromiter(
                (e[1] for e in edges), dtype=np.int64, count=len(edges)
            )
            lvl = np.asarray(level, dtype=np.int64)
            self._sweep(dl_comp, src, dst, -lvl[src])
            self._sweep(bl_comp, dst, src, lvl[dst])
        dl = dl_comp[comp_of_row]
        bl = bl_comp[comp_of_row]
        return _LabelState(version, ids, row, dl, bl)

    @staticmethod
    def _sweep(mat, into, come_from, key) -> None:
        """``mat[into] |= mat[come_from]`` per ascending ``key`` group.

        Within one group the gathered right-hand side is a pre-group
        copy, which is exact because same-level edges cannot depend on
        each other (an edge strictly increases the level).
        """
        order = np.argsort(key, kind="stable")
        into = into[order]
        come_from = come_from[order]
        key = key[order]
        cuts = [0] + list(np.flatnonzero(np.diff(key)) + 1) + [len(key)]
        for a, b in zip(cuts[:-1], cuts[1:]):
            np.bitwise_or.at(mat, into[a:b], mat[come_from[a:b]])

    # ------------------------------------------------------------------
    # Queries (read lock)
    # ------------------------------------------------------------------
    def check(self, source: int, target: int) -> Optional[bool]:
        """One pair through the rule ladder; ``None`` = abstain."""
        state = self._state
        if state is None:
            return None
        if state.version != self._graph.version:
            self.stale_abstains += 1
            return None
        row = state.row
        rs = row.get(source)
        rt = row.get(target)
        if rs is None or rt is None:
            return None
        if source == target:
            return True
        if not state.dirty_out[rs] and not state.dirty_in[rt]:
            if int(state.dl[rs, 0]) & int(state.bl[rt, 0]):
                return True
        if not state.missing:
            # Both rows of a side must be clean: a dirty row is neither an
            # over- nor an under-approximation (delete staleness adds bits,
            # skipped insert propagation withholds them), so it cannot sit
            # on either side of the containment test.
            if not state.dirty_out[rs] and not state.dirty_out[rt]:
                if np.any(state.dl[rt] & ~state.dl[rs]):
                    return False
            if not state.dirty_in[rs] and not state.dirty_in[rt]:
                if np.any(state.bl[rs] & ~state.bl[rt]):
                    return False
        return None

    def query_many(self, src, dst):
        """Vectorized rule ladder over aligned endpoint arrays.

        Returns an int8 array: ``1`` exact positive, ``-1`` exact
        negative, ``0`` abstain (search the pair). One gather-and-AND
        pass — this is the batch prefilter the planner and the shard
        router call.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        out = np.zeros(len(src), dtype=np.int8)
        state = self._state
        if state is None or len(state.ids) == 0 or len(src) == 0:
            return out
        if state.version != self._graph.version:
            self.stale_abstains += 1
            return out
        ids = state.ids
        last = len(ids) - 1
        si = np.minimum(np.searchsorted(ids, src), last)
        ti = np.minimum(np.searchsorted(ids, dst), last)
        ok = (ids[si] == src) & (ids[ti] == dst) & (src != dst)
        if not ok.any():
            return out
        dirty_out, dirty_in = state.dirty_out, state.dirty_in
        ds = state.dl[si]
        bt = state.bl[ti]
        pos = (
            ok
            & ~dirty_out[si]
            & ~dirty_in[ti]
            & ((ds[:, 0] & bt[:, 0]) != np.uint64(0))
        )
        out[pos] = 1
        if not state.missing:
            dt = state.dl[ti]
            bs = state.bl[si]
            neg = (
                ok
                & ~pos
                & (
                    (
                        ~dirty_out[si]
                        & ~dirty_out[ti]
                        & np.any(dt & ~ds, axis=1)
                    )
                    | (
                        ~dirty_in[si]
                        & ~dirty_in[ti]
                        & np.any(bs & ~bt, axis=1)
                    )
                )
            )
            out[neg] = -1
        return out

    def filter_pairs(self, pairs: Sequence[Pair]):
        """`query_many` over a pair list (the planner/router surface)."""
        count = len(pairs)
        src = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=count)
        dst = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=count)
        return self.query_many(src, dst)

    # ------------------------------------------------------------------
    # Updates (write lock)
    # ------------------------------------------------------------------
    def note_insert(self, u: int, v: int) -> None:
        """In-place OR propagation for one applied ``add_edge(u, v)``."""
        state = self._state
        if state is None:
            return
        self.updates += 1
        if u == v:
            state.version = self._graph.version
            return
        row = state.row
        ru = row.get(u)
        rv = row.get(v)
        if ru is None or rv is None:
            # add_edge materialized a vertex the matrices have no row
            # for: labels now under-approximate (the new vertex's bits
            # are absent upstream) until a rebuild re-seeds.
            self._mark_missing(state)
            return
        if not state.dirty_out[ru]:
            if state.dirty_out[rv]:
                # The carry (DL[v]) is itself suspect: taint u's
                # ancestors instead of spreading stale bits (keeps INV2).
                self._taint(state, u, out_side=True)
            else:
                self._propagate(
                    state, u, state.dl[rv].copy(), state.dl,
                    state.dirty_out, forward=False,
                )
        if not state.dirty_in[rv]:
            if state.dirty_in[ru]:
                self._taint(state, v, out_side=False)
            else:
                self._propagate(
                    state, v, state.bl[ru].copy(), state.bl,
                    state.dirty_in, forward=True,
                )
        state.version = self._graph.version

    def note_delete(
        self, u: int, v: int, removes_reachability: bool = True
    ) -> None:
        """Dirty-region invalidation for one applied ``remove_edge(u, v)``.

        ``removes_reachability=False`` (the fast-path pruner proved the
        deleted edge was redundant — a parallel DAG edge remains or the
        SCC held) keeps every label exact: reach sets did not change.
        Otherwise the *post-delete* ancestors of ``u`` and descendants of
        ``v`` are exactly the rows whose labels may now over-approximate
        (any old path through ``(u, v)`` reached ``u`` first, and that
        prefix survives the delete), so they are marked dirty.
        """
        state = self._state
        if state is None:
            return
        self.updates += 1
        if u == v or not removes_reachability:
            state.version = self._graph.version
            return
        row = state.row
        if row.get(u) is None or row.get(v) is None:
            self._mark_all_dirty(state)
            state.version = self._graph.version
            return
        self._taint(state, u, out_side=True)
        self._taint(state, v, out_side=False)
        state.version = self._graph.version

    def note_vertex(self, v: int) -> None:
        """An isolated vertex add: no label changes, resync the stamp.

        The new vertex has no row, so its queries abstain until the next
        full rebuild grows the matrices.
        """
        state = self._state
        if state is None:
            return
        self.updates += 1
        state.version = self._graph.version

    def invalidate(self) -> None:
        """Quarantine the whole index (a note hook failed mid-update):
        every row dirty *and* missing, so both rule directions abstain
        until :meth:`observe_query` rebuilds from scratch."""
        state = self._state
        if state is None:
            return
        self._mark_all_dirty(state)
        state.missing = True
        state.version = self._graph.version

    def _propagate(self, state, start, carry, mat, dirty, forward) -> None:
        """BFS from ``start``, ORing the fixed ``carry`` into every row
        until containment (early-stop), a dirty row (its whole upstream
        is dirty by INV2), or the frontier cutoff (labels go missing)."""
        graph = self._graph
        row = state.row
        limit = self.insert_frontier_limit
        seen = {start}
        queue = deque((start,))
        touched = 0
        while queue:
            x = queue.popleft()
            rx = row.get(x)
            if rx is None:
                self._mark_missing(state)
                return
            if dirty[rx]:
                continue
            existing = mat[rx]
            merged = existing | carry
            if not np.any(merged != existing):
                continue
            mat[rx] = merged
            touched += 1
            if touched > limit:
                self._mark_missing(state)
                return
            for y in graph.neighbors(x, forward):
                if y not in seen:
                    seen.add(y)
                    queue.append(y)

    def _taint(self, state, anchor: int, out_side: bool) -> None:
        """Mark ``anchor`` and its (post-mutation) ancestors dirty_out —
        or descendants dirty_in — stopping at already-dirty rows (their
        closure is covered by INV2) and bounded by ``delete_dirty_limit``
        (overflow marks everything dirty, which is always sound)."""
        graph = self._graph
        row = state.row
        dirty = state.dirty_out if out_side else state.dirty_in
        limit = self.delete_dirty_limit
        seen = {anchor}
        queue = deque((anchor,))
        marked = 0
        while queue:
            x = queue.popleft()
            rx = row.get(x)
            if rx is None:
                self._mark_all_dirty(state)
                return
            if dirty[rx]:
                continue
            dirty[rx] = True
            marked += 1
            if marked > limit:
                self._mark_all_dirty(state)
                return
            for y in graph.neighbors(x, not out_side):
                if y not in seen:
                    seen.add(y)
                    queue.append(y)
        if out_side:
            state.num_dirty_out += marked
        else:
            state.num_dirty_in += marked

    def _mark_missing(self, state) -> None:
        state.missing = True
        state.version = self._graph.version

    def _mark_all_dirty(self, state) -> None:
        state.dirty_out.fill(True)
        state.dirty_in.fill(True)
        state.num_dirty_out = len(state.ids)
        state.num_dirty_in = len(state.ids)

    # ------------------------------------------------------------------
    # Lazy rebuilds (read lock; graph frozen, swaps only)
    # ------------------------------------------------------------------
    def observe_query(self) -> None:
        """Demand-driven repair, called on the query path.

        After ``rebuild_cooldown`` stale-hit queries, the first caller to
        win the (non-blocking) rebuild mutex repairs: partial when only a
        bounded dirty region exists, full when the labels are missing,
        version-desynced, or past the staleness threshold. The repaired
        state is swapped in atomically; concurrent readers keep whatever
        snapshot they already captured.
        """
        state = self._state
        graph = self._graph
        if (
            state is not None
            and not state.missing
            and state.version == graph.version
            and state.num_dirty_out == 0
            and state.num_dirty_in == 0
        ):
            return
        self._demand += 1
        if state is not None and self._demand < self.rebuild_cooldown:
            return
        if not self._rebuild_mutex.acquire(blocking=False):
            return
        try:
            self._demand = 0
            state = self._state
            n = len(state.ids) if state is not None else 0
            stale = (
                max(state.num_dirty_out, state.num_dirty_in)
                if state is not None
                else 0
            )
            if (
                state is None
                or state.missing
                or state.version != graph.version
                or stale > self.staleness_threshold * n
            ):
                self.full_rebuilds += 1
                self._state = self._build_state()
            elif stale:
                rebuilt = self._partial_rebuild(state)
                if rebuilt is None:
                    self.full_rebuilds += 1
                    self._state = self._build_state()
                else:
                    self.partial_rebuilds += 1
                    self._state = rebuilt
        finally:
            self._rebuild_mutex.release()

    def _partial_rebuild(self, state) -> Optional[_LabelState]:
        """Recompute exactly the dirty rows on copied matrices.

        INV2 guarantees the dirty sets are SCC-closed, so Tarjan over the
        induced dirty subgraph sees every relevant cycle whole; components
        come out reverse-topological (sinks first), which is dependency
        order for DL (out-neighbours first) and reversed for BL. Clean
        neighbours contribute their exact rows (INV1). Returns ``None``
        to escalate to a full rebuild on any inconsistency.
        """
        dl = state.dl.copy()
        bl = state.bl.copy()
        rebuilt = _LabelState(state.version, state.ids, state.row, dl, bl)
        if state.num_dirty_out:
            rows = np.flatnonzero(state.dirty_out)
            if not self._recompute(state, rows, dl, out_side=True):
                return None
        if state.num_dirty_in:
            rows = np.flatnonzero(state.dirty_in)
            if not self._recompute(state, rows, bl, out_side=False):
                return None
        return rebuilt

    def _recompute(self, state, dirty_rows, mat, out_side: bool) -> bool:
        graph = self._graph
        row = state.row
        ids = state.ids
        dirty_ids = [int(x) for x in ids[dirty_rows]]
        dirty_set = set(dirty_ids)
        comps = strongly_connected_components(graph.subgraph(dirty_ids))
        if not out_side:
            comps = list(reversed(comps))
        done = set()
        for comp in comps:
            members = set(comp)
            val = np.zeros(self.words, dtype=np.uint64)
            for m in comp:
                val |= self._seed_of(m)
                for y in graph.neighbors(m, out_side):
                    if y in members:
                        continue
                    ry = row.get(y)
                    if ry is None:
                        return False
                    if y in dirty_set and y not in done:
                        # A dependency ahead of us in the order would
                        # break INV2 — escalate rather than trust it.
                        return False
                    val |= mat[ry]
            for m in comp:
                mat[row[m]] = val
                done.add(m)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stale_rows(self) -> int:
        state = self._state
        if state is None:
            return 0
        return max(state.num_dirty_out, state.num_dirty_in)

    def summary(self) -> Dict[str, object]:
        state = self._state
        return {
            "bits": self.words * _WORD_BITS,
            "landmarks": len(self._landmark_bit),
            "vertices": len(state.ids) if state is not None else 0,
            "version": state.version if state is not None else -1,
            "graph_version": self._graph.version,
            "missing": bool(state.missing) if state is not None else True,
            "stale_rows": self.stale_rows,
            "updates": self.updates,
            "full_rebuilds": self.full_rebuilds,
            "partial_rebuilds": self.partial_rebuilds,
            "stale_abstains": self.stale_abstains,
        }
