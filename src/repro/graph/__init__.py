"""Graph substrate: dynamic directed graphs, traversals, SCCs, DAG maintenance, I/O."""

from repro.graph.digraph import DynamicDiGraph
from repro.graph.scc import condensation, strongly_connected_components
from repro.graph.dag import DynamicDAG
from repro.graph.closure import TransitiveClosure
from repro.graph.kernels import HAVE_NUMPY, kernels_enabled, set_kernels_enabled
from repro.graph.stats import GraphSummary, summarize
from repro.graph.traversal import (
    bfs_distances,
    bfs_reachable,
    is_reachable_bfs,
    reverse_bfs_reachable,
)

if HAVE_NUMPY:
    from repro.graph.snapshot import CSRSnapshot
    from repro.graph.labels import LabelIndex
else:  # pragma: no cover - the no-numpy environment only
    CSRSnapshot = None  # type: ignore[assignment, misc]
    LabelIndex = None  # type: ignore[assignment, misc]
from repro.graph.labels import labels_available

__all__ = [
    "DynamicDiGraph",
    "DynamicDAG",
    "TransitiveClosure",
    "CSRSnapshot",
    "LabelIndex",
    "labels_available",
    "GraphSummary",
    "summarize",
    "HAVE_NUMPY",
    "kernels_enabled",
    "set_kernels_enabled",
    "strongly_connected_components",
    "condensation",
    "bfs_reachable",
    "reverse_bfs_reachable",
    "bfs_distances",
    "is_reachable_bfs",
]
