"""A dynamic directed graph with O(1) amortized edge updates.

This is the substrate every algorithm in the package runs on. The design
follows the paper's index-free philosophy: graph updates touch nothing but
the adjacency lists (Sec. V-A, "When the graph is updated, only the
adjacency lists are modified accordingly").

Representation
--------------
Out- and in-adjacency are ``dict[int, list[int]]``. Edge deletion marks a
tombstone by swap-removing from the list (order of neighbors is not
guaranteed, which no algorithm here relies on). Parallel edges are rejected
so that ``m`` always counts distinct edges, matching the paper's simple
graph model.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple


class DynamicDiGraph:
    """A mutable, simple, directed graph over integer vertex ids.

    Vertices are created implicitly by :meth:`add_edge` / :meth:`add_vertex`.
    Both adjacency directions are maintained so that reverse traversals
    (backward push, reverse BFS) cost the same as forward ones.
    """

    __slots__ = (
        "_out",
        "_in",
        "_num_edges",
        "_edge_set",
        "_version",
        "_csr_state",
    )

    def __init__(
        self,
        edges: Optional[Iterable[Tuple[int, int]]] = None,
        vertices: Optional[Iterable[int]] = None,
    ) -> None:
        self._out: Dict[int, List[int]] = {}
        self._in: Dict[int, List[int]] = {}
        self._edge_set: Set[Tuple[int, int]] = set()
        self._num_edges = 0
        self._version = 0
        self._csr_state: Optional[Tuple[int, int, object]] = None
        if vertices is not None:
            for v in vertices:
                self.add_vertex(v)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """The number of vertices currently in the graph (``n``)."""
        return len(self._out)

    @property
    def num_edges(self) -> int:
        """The number of directed edges currently in the graph (``m``)."""
        return self._num_edges

    @property
    def version(self) -> int:
        """A monotonic epoch counter, bumped on every effective mutation.

        No-op mutations (adding an existing vertex/edge, removing a missing
        one) leave it unchanged, so ``version`` identifies a snapshot: two
        reads of the same graph with equal versions saw identical edge
        sets. Consumers (the service cache, the fast-path pruner) stamp
        derived state with the version it was computed at.
        """
        return self._version

    @property
    def average_degree(self) -> float:
        """``m / n``; 0.0 on the empty graph."""
        n = self.num_vertices
        return self._num_edges / n if n else 0.0

    def vertices(self) -> Iterator[int]:
        """Iterate over all vertex ids."""
        return iter(self._out)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all directed edges as ``(u, v)`` pairs."""
        for u, nbrs in self._out.items():
            for v in nbrs:
                yield (u, v)

    def has_vertex(self, v: int) -> bool:
        return v in self._out

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._edge_set

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> None:
        """Add an isolated vertex; a no-op if it already exists."""
        if v not in self._out:
            self._out[v] = []
            self._in[v] = []
            self._version += 1

    def add_edge(self, u: int, v: int) -> bool:
        """Insert the directed edge ``(u, v)``.

        Returns ``True`` if the edge was inserted, ``False`` if it already
        existed (parallel edges are not stored). Self-loops are allowed;
        they never affect reachability answers.
        """
        if (u, v) in self._edge_set:
            return False
        self.add_vertex(u)
        self.add_vertex(v)
        self._out[u].append(v)
        self._in[v].append(u)
        self._edge_set.add((u, v))
        self._num_edges += 1
        self._version += 1
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete the directed edge ``(u, v)``.

        Returns ``True`` if it existed. Uses swap-removal, so adjacency
        order is not stable across deletions.
        """
        if (u, v) not in self._edge_set:
            return False
        self._edge_set.discard((u, v))
        self._swap_remove(self._out[u], v)
        self._swap_remove(self._in[v], u)
        self._num_edges -= 1
        self._version += 1
        return True

    def remove_vertex(self, v: int) -> bool:
        """Delete a vertex and all its incident edges."""
        if v not in self._out:
            return False
        for w in list(self._out[v]):
            self.remove_edge(v, w)
        for w in list(self._in[v]):
            self.remove_edge(w, v)
        del self._out[v]
        del self._in[v]
        self._version += 1
        return True

    def restore_version(self, version: int) -> None:
        """Realign the epoch counter after journal replay.

        Replaying a journal rebuilds the edge set deterministically but not
        necessarily with the same *number* of effective mutations the
        original process performed (a recovered base graph may batch what
        was once incremental). Version-stamped derived state (cache
        entries, journal records) written before the crash must compare
        correctly against post-recovery versions, so recovery pins the
        counter to the last durably recorded version. Monotonicity is
        enforced: the counter never moves backwards.
        """
        if version < self._version:
            raise ValueError(
                f"cannot restore version {version}: counter already at "
                f"{self._version} (versions are monotone)"
            )
        if version != self._version:
            self._version = version
            self._csr_state = None

    @staticmethod
    def _swap_remove(lst: List[int], value: int) -> None:
        idx = lst.index(value)
        lst[idx] = lst[-1]
        lst.pop()

    # ------------------------------------------------------------------
    # Adjacency access
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> List[int]:
        """The list of out-neighbors of ``v`` (do not mutate)."""
        return self._out[v]

    def in_neighbors(self, v: int) -> List[int]:
        """The list of in-neighbors of ``v`` (do not mutate)."""
        return self._in[v]

    def neighbors(self, v: int, forward: bool) -> List[int]:
        """Directional adjacency: out-neighbors if ``forward`` else in-."""
        return self._out[v] if forward else self._in[v]

    def adjacency(self, forward: bool) -> Dict[int, List[int]]:
        """The raw directional adjacency map.

        Exposed for the hot loops (guided search, BiBFS), which bind it to
        a local to avoid per-edge method-call overhead. Treat as read-only.
        """
        return self._out if forward else self._in

    # ------------------------------------------------------------------
    # Frozen CSR read view
    # ------------------------------------------------------------------
    def csr(self, build: bool = True):
        """A frozen CSR view of the current epoch, or ``None``.

        The view is keyed by :attr:`version`: any effective mutation makes
        the cached snapshot stale, after which it is rebuilt lazily — at
        most once per graph epoch — on the next ``build=True`` call.
        ``build=False`` is the pure probe the hot paths use: it returns
        the snapshot only when one is already frozen *for this exact
        version*, never paying a freeze mid-churn. Returns ``None``
        whenever numpy is unavailable or kernels are switched off.

        Thread-safety matches the rest of the class: concurrent readers
        may race to build the same version (both produce identical
        snapshots; one reference wins the single-assignment publish), but
        mutations must not run concurrently with ``build=True``.
        """
        from repro.graph import kernels

        if not kernels.kernels_enabled():
            return None
        # Keyed by (version, pid): a snapshot frozen before a fork belongs
        # to the parent's address-space segment, and its own version-keyed
        # side caches (narrow-target tables, degree tables) key by
        # segment_token — a child process serving it would mix parent-era
        # tokens with child-era rebuilds. The pid guard makes every forked
        # or spawned worker rebuild (or attach) its own segment instead of
        # inheriting a stale view.
        state = self._csr_state
        if (
            state is not None
            and state[0] == self._version
            and state[1] == os.getpid()
        ):
            return state[2]
        if not build:
            return None
        from repro.graph.snapshot import CSRSnapshot

        snapshot = CSRSnapshot.freeze(self)
        self._csr_state = (self._version, os.getpid(), snapshot)
        return snapshot

    def out_degree(self, v: int) -> int:
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        return len(self._in[v])

    def degree(self, v: int) -> int:
        """Total degree ``d_out(v) + d_in(v)`` (the paper's ``vol`` unit)."""
        return len(self._out[v]) + len(self._in[v])

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "DynamicDiGraph":
        """An independent deep copy of the current snapshot.

        The version counter is preserved: a copy identifies the *same*
        snapshot, so version-keyed derived state (journal base versions,
        replication watermarks) compares correctly against the copy.
        """
        g = DynamicDiGraph()
        for v in self._out:
            g.add_vertex(v)
        for u, v in self.edges():
            g.add_edge(u, v)
        g._version = self._version
        return g

    def reversed(self) -> "DynamicDiGraph":
        """A copy with every edge direction flipped."""
        g = DynamicDiGraph()
        for v in self._out:
            g.add_vertex(v)
        for u, v in self.edges():
            g.add_edge(v, u)
        return g

    def subgraph(self, vertices: Iterable[int]) -> "DynamicDiGraph":
        """The induced subgraph over ``vertices``."""
        keep = set(vertices)
        g = DynamicDiGraph()
        for v in keep:
            if v in self._out:
                g.add_vertex(v)
        for u in keep:
            if u not in self._out:
                continue
            for v in self._out[u]:
                if v in keep:
                    g.add_edge(u, v)
        return g

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __contains__(self, v: int) -> bool:
        return v in self._out

    def __len__(self) -> int:
        return len(self._out)

    def __repr__(self) -> str:
        return f"DynamicDiGraph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicDiGraph):
            return NotImplemented
        return (
            set(self._out) == set(other._out)
            and self._edge_set == other._edge_set
        )

    def __hash__(self) -> int:  # mutable container; identity hashing
        return id(self)
