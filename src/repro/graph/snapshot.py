"""Frozen CSR snapshots: compact, immutable, serializable graph states.

A :class:`CSRSnapshot` freezes a :class:`DynamicDiGraph` into forward and
reverse compressed-sparse-row arrays (numpy int64). Use cases:

* persisting a snapshot mid-stream (``save`` / ``load``, portable .npz);
* memory-lean archival of many snapshots (two arrays per direction instead
  of per-vertex lists);
* fast sequential scans for analytics (degree histograms, samplers).

Snapshots are read-only by design — mutate the dynamic graph and re-freeze.
Vertex ids are compacted to ``0..n-1`` with the original ids kept in a
lookup table, so graphs with sparse id spaces freeze without waste.
"""

from __future__ import annotations

import os
from itertools import chain, count
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple, Union

if os.environ.get("REPRO_NO_NUMPY"):  # pragma: no cover - no-numpy CI job
    raise ImportError("numpy disabled via REPRO_NO_NUMPY")
import numpy as np

from repro.graph.digraph import DynamicDiGraph

PathLike = Union[str, Path]

#: Array attributes in canonical manifest order.
ARRAY_FIELDS = (
    "vertex_ids",
    "out_offsets",
    "out_targets",
    "in_offsets",
    "in_targets",
)

#: Process-local counter feeding :attr:`CSRSnapshot.segment_token`.
_SEGMENT_IDS = count(1)

#: Buffer offsets are rounded up to this alignment so zero-copy views
#: satisfy any dtype's alignment requirement.
_ALIGN = 16


class CSRSnapshot:
    """An immutable CSR view of one graph state."""

    def __init__(
        self,
        vertex_ids: np.ndarray,
        out_offsets: np.ndarray,
        out_targets: np.ndarray,
        in_offsets: np.ndarray,
        in_targets: np.ndarray,
    ) -> None:
        self.vertex_ids = vertex_ids
        self.out_offsets = out_offsets
        self.out_targets = out_targets
        self.in_offsets = in_offsets
        self.in_targets = in_targets
        # tolist() yields Python ints in C; the zip/dict pair avoids a
        # per-vertex int() call in what is a hot constructor (the serving
        # engine re-freezes after every update epoch).
        self._index: Dict[int, int] = dict(
            zip(vertex_ids.tolist(), range(len(vertex_ids)))
        )
        # freeze() emits ids sorted; only then can array lookups use
        # searchsorted (load() of a foreign archive might not be sorted).
        self._ids_sorted = bool(
            len(vertex_ids) < 2 or np.all(np.diff(vertex_ids) > 0)
        )
        # (pid, serial): identifies *this materialization in this process*.
        # Version-keyed caches that key by snapshot contents or object
        # identity go stale across fork/spawn — a child inheriting the
        # parent's cache entry must rebuild, and a shared-memory attach in
        # a worker must never collide with the primary's entry. Keying by
        # segment_token makes both cases distinct by construction.
        self.segment_token: Tuple[int, int] = (os.getpid(), next(_SEGMENT_IDS))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def freeze(cls, graph: DynamicDiGraph) -> "CSRSnapshot":
        """Freeze the current state of a dynamic graph.

        Fully vectorized: offsets come from one ``cumsum`` over the degree
        counts, the target arrays are filled by flattening all adjacency
        lists in one pass and mapping ids to compacted indices with a
        single ``searchsorted``, and the per-vertex neighbor sort (the
        canonical-form guarantee: equal graphs freeze to equal snapshots
        regardless of update history) is one stable ``lexsort`` keyed by
        segment. No per-edge Python iteration anywhere.
        """
        vertices = sorted(graph.vertices())
        n = len(vertices)
        vertex_ids = np.asarray(vertices, dtype=np.int64)
        adj_out = graph.adjacency(True)
        adj_in = graph.adjacency(False)
        # Distinct sorted ids spanning exactly 0..n-1 mean compaction is
        # the identity — no per-edge id remapping needed at all.
        compact = n == 0 or (vertices[0] == 0 and vertices[-1] == n - 1)

        def _direction(adj):
            # map/chain/list keep all per-vertex and per-edge iteration in
            # C; a genexpr + np.fromiter here costs a Python frame per
            # element and dominates the whole freeze.
            lists = list(map(adj.__getitem__, vertices))
            counts = np.fromiter(map(len, lists), dtype=np.int64, count=n)
            offsets = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            raw = np.array(list(chain.from_iterable(lists)), dtype=np.int64)
            targets = raw if compact else np.searchsorted(vertex_ids, raw)
            # Sort neighbors within each vertex's segment: the segment ids
            # are non-decreasing, so a stable sort keyed (segment, target)
            # only permutes within segments.
            segments = np.repeat(np.arange(n, dtype=np.int64), counts)
            targets = targets[np.lexsort((targets, segments))]
            return offsets, targets

        out_offsets, out_targets = _direction(adj_out)
        in_offsets, in_targets = _direction(adj_in)
        return cls(vertex_ids, out_offsets, out_targets, in_offsets, in_targets)

    def thaw(self) -> DynamicDiGraph:
        """Rebuild an equivalent mutable graph."""
        graph = DynamicDiGraph(vertices=(int(v) for v in self.vertex_ids))
        ids = self.vertex_ids
        for i in range(self.num_vertices):
            u = int(ids[i])
            for k in range(int(self.out_offsets[i]), int(self.out_offsets[i + 1])):
                graph.add_edge(u, int(ids[self.out_targets[k]]))
        return graph

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.vertex_ids)

    @property
    def num_edges(self) -> int:
        return len(self.out_targets)

    def has_vertex(self, v: int) -> bool:
        return v in self._index

    def index_of(self, v: int) -> int:
        """The compacted ``0..n-1`` index of original id ``v``."""
        return self._index[v]

    def indices_of(self, ids: Iterable[int]) -> np.ndarray:
        """Vectorized :meth:`index_of` over a collection of original ids.

        Uses one ``searchsorted`` when the id table is sorted (always true
        for :meth:`freeze` output); every id must exist in the snapshot.
        """
        arr = np.fromiter(ids, dtype=np.int64)
        if self._ids_sorted:
            return np.searchsorted(self.vertex_ids, arr)
        index = self._index
        return np.fromiter(
            (index[int(v)] for v in arr), dtype=np.int64, count=len(arr)
        )

    def out_degree(self, v: int) -> int:
        i = self._index[v]
        return int(self.out_offsets[i + 1] - self.out_offsets[i])

    def in_degree(self, v: int) -> int:
        i = self._index[v]
        return int(self.in_offsets[i + 1] - self.in_offsets[i])

    def out_neighbors(self, v: int) -> List[int]:
        i = self._index[v]
        span = self.out_targets[self.out_offsets[i] : self.out_offsets[i + 1]]
        ids = self.vertex_ids
        return [int(ids[j]) for j in span]

    def in_neighbors(self, v: int) -> List[int]:
        i = self._index[v]
        span = self.in_targets[self.in_offsets[i] : self.in_offsets[i + 1]]
        ids = self.vertex_ids
        return [int(ids[j]) for j in span]

    def edges(self) -> Iterator[Tuple[int, int]]:
        ids = self.vertex_ids
        for i in range(self.num_vertices):
            u = int(ids[i])
            for k in range(int(self.out_offsets[i]), int(self.out_offsets[i + 1])):
                yield (u, int(ids[self.out_targets[k]]))

    # ------------------------------------------------------------------
    # Raw-buffer round trip (shared-memory publish / attach)
    # ------------------------------------------------------------------
    def to_buffers(self) -> Tuple[Dict[str, object], List[np.ndarray]]:
        """``(manifest, arrays)`` describing a flat byte layout.

        The manifest records, per array field, its dtype string, shape,
        byte offset, and byte length inside one contiguous buffer of
        ``manifest["total_bytes"]`` bytes (offsets are 16-byte aligned).
        It is plain JSON-able data, so it can travel over a pipe to a
        worker process while the bytes travel through
        ``multiprocessing.shared_memory``. ``arrays`` are the C-contiguous
        sources in manifest order, ready for :meth:`pack_into`.
        """
        fields: List[Dict[str, object]] = []
        arrays: List[np.ndarray] = []
        offset = 0
        for name in ARRAY_FIELDS:
            arr = np.ascontiguousarray(getattr(self, name))
            offset = -(-offset // _ALIGN) * _ALIGN
            fields.append(
                {
                    "name": name,
                    "dtype": arr.dtype.str,
                    "shape": list(arr.shape),
                    "offset": offset,
                    "nbytes": arr.nbytes,
                }
            )
            arrays.append(arr)
            offset += arr.nbytes
        # SharedMemory refuses zero-size segments; an empty snapshot still
        # needs one byte of backing store.
        manifest = {"fields": fields, "total_bytes": max(offset, 1)}
        return manifest, arrays

    def pack_into(self, buffer) -> Dict[str, object]:
        """Copy all arrays into ``buffer`` (writable, bytes-like) at the
        offsets of a fresh manifest; returns that manifest."""
        manifest, arrays = self.to_buffers()
        view = memoryview(buffer)
        if len(view) < int(manifest["total_bytes"]):
            raise ValueError(
                f"buffer holds {len(view)} bytes, need {manifest['total_bytes']}"
            )
        for field, arr in zip(manifest["fields"], arrays):
            if arr.nbytes == 0:
                continue
            dest = np.frombuffer(
                view, dtype=arr.dtype, count=arr.size, offset=int(field["offset"])
            )
            # frombuffer views of read-only buffers can't be assigned to;
            # pack_into requires a writable buffer by contract.
            dest[...] = arr.ravel()
        return manifest

    @classmethod
    def from_buffers(cls, manifest: Dict[str, object], buffer) -> "CSRSnapshot":
        """Rebuild a snapshot from a manifest + raw buffer, zero-copy.

        The arrays become read-only views into ``buffer`` — nothing is
        re-canonicalized, re-sorted, or copied, so attaching a published
        segment in a worker costs O(n) only for the id-lookup dict the
        read API needs. The caller must keep ``buffer`` (and whatever owns
        it, e.g. the ``SharedMemory`` handle) alive as long as the
        snapshot is in use.
        """
        view = memoryview(buffer)
        parts: Dict[str, np.ndarray] = {}
        for field in manifest["fields"]:  # type: ignore[index]
            dtype = np.dtype(field["dtype"])
            shape = tuple(field["shape"])
            size = 1
            for dim in shape:
                size *= dim
            arr = np.frombuffer(
                view, dtype=dtype, count=size, offset=int(field["offset"])
            ).reshape(shape)
            if arr.flags.writeable:
                arr.flags.writeable = False
            parts[str(field["name"])] = arr
        return cls(*(parts[name] for name in ARRAY_FIELDS))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Write as a portable ``.npz`` archive."""
        np.savez_compressed(
            path,
            vertex_ids=self.vertex_ids,
            out_offsets=self.out_offsets,
            out_targets=self.out_targets,
            in_offsets=self.in_offsets,
            in_targets=self.in_targets,
        )

    @classmethod
    def load(cls, path: PathLike) -> "CSRSnapshot":
        """Read an archive written by :meth:`save`."""
        with np.load(path) as data:
            return cls(
                data["vertex_ids"],
                data["out_offsets"],
                data["out_targets"],
                data["in_offsets"],
                data["in_targets"],
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRSnapshot):
            return NotImplemented
        return all(
            np.array_equal(getattr(self, f), getattr(other, f))
            for f in (
                "vertex_ids",
                "out_offsets",
                "out_targets",
                "in_offsets",
                "in_targets",
            )
        )

    def __repr__(self) -> str:
        return f"CSRSnapshot(n={self.num_vertices}, m={self.num_edges})"
