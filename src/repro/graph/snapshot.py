"""Frozen CSR snapshots: compact, immutable, serializable graph states.

A :class:`CSRSnapshot` freezes a :class:`DynamicDiGraph` into forward and
reverse compressed-sparse-row arrays (numpy int64). Use cases:

* persisting a snapshot mid-stream (``save`` / ``load``, portable .npz);
* memory-lean archival of many snapshots (two arrays per direction instead
  of per-vertex lists);
* fast sequential scans for analytics (degree histograms, samplers).

Snapshots are read-only by design — mutate the dynamic graph and re-freeze.
Vertex ids are compacted to ``0..n-1`` with the original ids kept in a
lookup table, so graphs with sparse id spaces freeze without waste.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Union

import numpy as np

from repro.graph.digraph import DynamicDiGraph

PathLike = Union[str, Path]


class CSRSnapshot:
    """An immutable CSR view of one graph state."""

    def __init__(
        self,
        vertex_ids: np.ndarray,
        out_offsets: np.ndarray,
        out_targets: np.ndarray,
        in_offsets: np.ndarray,
        in_targets: np.ndarray,
    ) -> None:
        self.vertex_ids = vertex_ids
        self.out_offsets = out_offsets
        self.out_targets = out_targets
        self.in_offsets = in_offsets
        self.in_targets = in_targets
        self._index: Dict[int, int] = {
            int(v): i for i, v in enumerate(vertex_ids)
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def freeze(cls, graph: DynamicDiGraph) -> "CSRSnapshot":
        """Freeze the current state of a dynamic graph."""
        vertices = sorted(graph.vertices())
        index = {v: i for i, v in enumerate(vertices)}
        n = len(vertices)
        out_offsets = np.zeros(n + 1, dtype=np.int64)
        in_offsets = np.zeros(n + 1, dtype=np.int64)
        for v in vertices:
            out_offsets[index[v] + 1] = graph.out_degree(v)
            in_offsets[index[v] + 1] = graph.in_degree(v)
        np.cumsum(out_offsets, out=out_offsets)
        np.cumsum(in_offsets, out=in_offsets)
        out_targets = np.empty(int(out_offsets[-1]), dtype=np.int64)
        in_targets = np.empty(int(in_offsets[-1]), dtype=np.int64)
        for v in vertices:
            i = index[v]
            start = int(out_offsets[i])
            for k, w in enumerate(sorted(graph.out_neighbors(v))):
                out_targets[start + k] = index[w]
            start = int(in_offsets[i])
            for k, w in enumerate(sorted(graph.in_neighbors(v))):
                in_targets[start + k] = index[w]
        return cls(
            np.asarray(vertices, dtype=np.int64),
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
        )

    def thaw(self) -> DynamicDiGraph:
        """Rebuild an equivalent mutable graph."""
        graph = DynamicDiGraph(vertices=(int(v) for v in self.vertex_ids))
        ids = self.vertex_ids
        for i in range(self.num_vertices):
            u = int(ids[i])
            for k in range(int(self.out_offsets[i]), int(self.out_offsets[i + 1])):
                graph.add_edge(u, int(ids[self.out_targets[k]]))
        return graph

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.vertex_ids)

    @property
    def num_edges(self) -> int:
        return len(self.out_targets)

    def has_vertex(self, v: int) -> bool:
        return v in self._index

    def out_degree(self, v: int) -> int:
        i = self._index[v]
        return int(self.out_offsets[i + 1] - self.out_offsets[i])

    def in_degree(self, v: int) -> int:
        i = self._index[v]
        return int(self.in_offsets[i + 1] - self.in_offsets[i])

    def out_neighbors(self, v: int) -> List[int]:
        i = self._index[v]
        span = self.out_targets[self.out_offsets[i] : self.out_offsets[i + 1]]
        ids = self.vertex_ids
        return [int(ids[j]) for j in span]

    def in_neighbors(self, v: int) -> List[int]:
        i = self._index[v]
        span = self.in_targets[self.in_offsets[i] : self.in_offsets[i + 1]]
        ids = self.vertex_ids
        return [int(ids[j]) for j in span]

    def edges(self) -> Iterator[Tuple[int, int]]:
        ids = self.vertex_ids
        for i in range(self.num_vertices):
            u = int(ids[i])
            for k in range(int(self.out_offsets[i]), int(self.out_offsets[i + 1])):
                yield (u, int(ids[self.out_targets[k]]))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: PathLike) -> None:
        """Write as a portable ``.npz`` archive."""
        np.savez_compressed(
            path,
            vertex_ids=self.vertex_ids,
            out_offsets=self.out_offsets,
            out_targets=self.out_targets,
            in_offsets=self.in_offsets,
            in_targets=self.in_targets,
        )

    @classmethod
    def load(cls, path: PathLike) -> "CSRSnapshot":
        """Read an archive written by :meth:`save`."""
        with np.load(path) as data:
            return cls(
                data["vertex_ids"],
                data["out_offsets"],
                data["out_targets"],
                data["in_offsets"],
                data["in_targets"],
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRSnapshot):
            return NotImplemented
        return all(
            np.array_equal(getattr(self, f), getattr(other, f))
            for f in (
                "vertex_ids",
                "out_offsets",
                "out_targets",
                "in_offsets",
                "in_targets",
            )
        )

    def __repr__(self) -> str:
        return f"CSRSnapshot(n={self.num_vertices}, m={self.num_edges})"
