"""Batch query planning: pick the right oracle for the batch shape.

IFCA answers one query in sublinear time; the bitset transitive closure
(:class:`~repro.graph.closure.TransitiveClosure`) answers *all* queries on
a frozen snapshot after one O(n*m/64)-ish build. For analytics-style
workloads ("label these 10^5 pairs on today's snapshot") the closure wins;
for trickle queries on a changing graph IFCA wins. :class:`QueryPlanner`
makes that call per batch with a calibrated crossover, and invalidates its
cached closure on any update — so callers just ask and update.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.ifca import IFCA
from repro.core.params import IFCAParams
from repro.graph.closure import TransitiveClosure
from repro.graph.digraph import DynamicDiGraph

Query = Tuple[int, int]


class QueryPlanner:
    """Adaptive single/batch reachability answering over a dynamic graph.

    Parameters
    ----------
    graph:
        The dynamic graph; updates go through :meth:`insert_edge` /
        :meth:`delete_edge` so the cached closure stays consistent.
    closure_cost_factor:
        The planner estimates a closure build as ``factor * n * m /
        bitword`` basic operations and a per-query IFCA/BiBFS answer as
        ``n + m`` in the worst case; a batch switches to the closure when
        ``build + batch * lookup < batch * per_query``. The default is
        deliberately conservative (prefer IFCA for small batches).
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        params: Optional[IFCAParams] = None,
        closure_cost_factor: float = 1.0,
    ) -> None:
        if closure_cost_factor <= 0:
            raise ValueError("closure_cost_factor must be positive")
        self.graph = graph
        self.engine = IFCA(graph, params)
        self.closure_cost_factor = closure_cost_factor
        self._closure: Optional[TransitiveClosure] = None
        self.closure_builds = 0

    # ------------------------------------------------------------------
    # Updates invalidate the frozen closure.
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> None:
        self.engine.insert_edge(u, v)
        self._closure = None

    def delete_edge(self, u: int, v: int) -> None:
        self.engine.delete_edge(u, v)
        self._closure = None

    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> bool:
        """One query: reuse a still-valid closure, else IFCA."""
        if self._closure is not None:
            return self._closure.is_reachable(source, target)
        return self.engine.is_reachable(source, target)

    def query_batch(self, queries: Sequence[Query]) -> List[bool]:
        """Answer a batch, choosing the cheaper oracle for its size."""
        if not queries:
            return []
        if self._closure is None and self._closure_pays_off(len(queries)):
            self._closure = TransitiveClosure(self.graph)
            self.closure_builds += 1
        if self._closure is not None:
            is_reachable = self._closure.is_reachable
            return [is_reachable(s, t) for s, t in queries]
        is_reachable = self.engine.is_reachable
        return [is_reachable(s, t) for s, t in queries]

    def _closure_pays_off(self, batch_size: int) -> bool:
        n = max(self.graph.num_vertices, 1)
        m = self.graph.num_edges
        build_cost = self.closure_cost_factor * n * (m + n) / 64.0
        per_query_cost = n + m
        # Closure lookups are ~O(1); IFCA worst case ~O(n + m).
        return build_cost < batch_size * per_query_cost

    @property
    def closure_is_cached(self) -> bool:
        return self._closure is not None
