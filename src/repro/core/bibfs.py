"""Frontier-initialized bidirectional BFS — Algorithm 5.

The BiBFS that takes over after the cost model switches strategies. It
starts from the guided search's frontiers, inherits the visited sets, runs
on the reduced graph (mapping adjacency through the contraction overlay),
and alternates directions at layer granularity.

Also usable stand-alone from ``{s}`` / ``{t}`` frontiers on a fresh
context, which is exactly the plain BiBFS competitor. All per-direction
bindings are hoisted out of the layer loop: on sparse graphs layers hold
only a couple of vertices, so per-layer setup would otherwise dominate.

When the query never contracted (empty overlay, no super-vertices) and a
current-version CSR snapshot is already frozen, the whole phase dispatches
to the vectorized kernel (:func:`repro.graph.kernels.csr_bibfs_frontiers`)
instead — answer-equivalent, but paying interpreter cost per layer rather
than per edge.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.state import SearchContext
from repro.core.stats import QueryStats
from repro.graph import kernels


def frontier_bibfs(
    ctx: SearchContext,
    frontier_f: Iterable[int],
    frontier_r: Iterable[int],
    stats: QueryStats,
) -> bool:
    """Run Alg. 5 to completion; returns whether ``s -> t``."""
    fwd, rev = ctx.fwd, ctx.rev
    budget = ctx.budget
    if (
        ctx.params.use_kernels
        and not ctx.find
        and not fwd.has_super
        and not rev.has_super
    ):
        snapshot = ctx.graph.csr(build=False)
        if snapshot is not None:
            # The kernel checkpoints the budget per layer itself; the dict
            # visited sets are untouched on a raise, so the engine's
            # export still describes sound (pre-BiBFS) state.
            met, accesses = kernels.csr_bibfs_frontiers(
                snapshot,
                frontier_f,
                frontier_r,
                fwd.visited,
                rev.visited,
                budget=budget,
            )
            stats.bibfs_edge_accesses += accesses
            stats.used_kernel = True
            return met
    visited_f, visited_r = fwd.visited, rev.visited
    adj_f = ctx.graph.adjacency(True)
    adj_r = ctx.graph.adjacency(False)
    find_get = ctx.find.get
    super_f, super_adj_f = fwd.super_sentinel, fwd.super_adj
    super_r, super_adj_r = rev.super_sentinel, rev.super_adj
    explored_f, explored_r = fwd.explored, rev.explored

    cur_f: List[int] = list(frontier_f)
    cur_r: List[int] = list(frontier_r)
    accesses = 0
    charged = 0
    try:
        # An exhausted frontier proves the negative: meets are tested the
        # moment a vertex enters a visited set, so an empty frontier means
        # that side's visited set is its endpoint's complete closure and
        # is disjoint from the other side — no future layer can meet it.
        while cur_f and cur_r:
            if budget is not None:
                # Layer boundaries keep explored consistent with the
                # enumerated adjacency, so a raise here exports soundly.
                delta = accesses - charged
                charged = accesses
                budget.checkpoint(delta)
            next_f: List[int] = []
            for u in cur_f:
                for w in (super_adj_f if u == super_f else adj_f[u]):
                    accesses += 1
                    w = find_get(w, w)
                    if w == u or w in visited_f:
                        continue
                    if w in visited_r:
                        return True
                    visited_f.add(w)
                    next_f.append(w)
            explored_f.update(cur_f)
            cur_f = next_f
            if not cur_f:
                break
            next_r: List[int] = []
            for u in cur_r:
                for w in (super_adj_r if u == super_r else adj_r[u]):
                    accesses += 1
                    w = find_get(w, w)
                    if w == u or w in visited_r:
                        continue
                    if w in visited_f:
                        return True
                    visited_r.add(w)
                    next_r.append(w)
            explored_r.update(cur_r)
            cur_r = next_r
        return False
    finally:
        if budget is not None:
            budget.charge(accesses - charged)
        stats.bibfs_edge_accesses += accesses
