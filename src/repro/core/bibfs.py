"""Frontier-initialized bidirectional BFS — Algorithm 5.

The BiBFS that takes over after the cost model switches strategies. It
starts from the guided search's frontiers, inherits the visited sets, runs
on the reduced graph (mapping adjacency through the contraction overlay),
and alternates directions at layer granularity.

Also usable stand-alone from ``{s}`` / ``{t}`` frontiers on a fresh
context, which is exactly the plain BiBFS competitor. All per-direction
bindings are hoisted out of the layer loop: on sparse graphs layers hold
only a couple of vertices, so per-layer setup would otherwise dominate.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.core.state import SearchContext
from repro.core.stats import QueryStats


def frontier_bibfs(
    ctx: SearchContext,
    frontier_f: Iterable[int],
    frontier_r: Iterable[int],
    stats: QueryStats,
) -> bool:
    """Run Alg. 5 to completion; returns whether ``s -> t``."""
    fwd, rev = ctx.fwd, ctx.rev
    visited_f, visited_r = fwd.visited, rev.visited
    adj_f = ctx.graph.adjacency(True)
    adj_r = ctx.graph.adjacency(False)
    find_get = ctx.find.get
    super_f, super_adj_f = fwd.super_sentinel, fwd.super_adj
    super_r, super_adj_r = rev.super_sentinel, rev.super_adj
    explored_f, explored_r = fwd.explored, rev.explored

    cur_f: List[int] = list(frontier_f)
    cur_r: List[int] = list(frontier_r)
    accesses = 0
    try:
        while cur_f or cur_r:
            if cur_f:
                next_f: List[int] = []
                for u in cur_f:
                    for w in (super_adj_f if u == super_f else adj_f[u]):
                        accesses += 1
                        w = find_get(w, w)
                        if w == u or w in visited_f:
                            continue
                        if w in visited_r:
                            return True
                        visited_f.add(w)
                        next_f.append(w)
                explored_f.update(cur_f)
                cur_f = next_f
            if cur_r:
                next_r: List[int] = []
                for u in cur_r:
                    for w in (super_adj_r if u == super_r else adj_r[u]):
                        accesses += 1
                        w = find_get(w, w)
                        if w == u or w in visited_r:
                            continue
                        if w in visited_f:
                            return True
                        visited_r.add(w)
                        next_r.append(w)
                explored_r.update(cur_r)
                cur_r = next_r
        return False
    finally:
        stats.bibfs_edge_accesses += accesses
