"""Bidirectional probability-guided search — Algorithm 3.

One invocation drains every vertex whose normalized residue is at or above
the current threshold ``epsilon_cur``, pushing residue along the search
direction's edges on the reduced graph. Returns ``True`` on a bidirectional
meet (a vertex visited from both directions), which proves ``s -> t``.

Deviations from the pseudocode, all behavior-preserving:

* residue is zeroed *before* distribution so self-loops keep their share;
* dangling vertices (no edges in the search direction) are marked explored
  immediately — their residue can never move, and treating them as explored
  lets community contraction absorb them (required for exhaustion
  detection when the source itself is dangling);
* backward-style distribution divides by the *raw* receiver's degree, not
  the contracted one: several raw edges mapping into the super-vertex with
  a lumped divisor would otherwise amplify residue mass around
  super-vertex cycles (spectral radius above 1) and the drain would never
  terminate;
* each invocation carries a push budget of a small multiple of Lemma 1's
  bound. A drain that exceeds it returns normally — stopping Alg. 3 early
  at any point is always sound ("choose any u" never *requires* a push),
  and the budget converts pathological residue circulation at extreme
  thresholds into ordinary main-loop rounds bounded by ``max_rounds``.

Implementation note: this is the hottest loop in the package, so the
adjacency map, overlay, and per-style weighting are all bound to locals —
the measured per-operation ratio against BiBFS (the cost model's
``lambda``) depends directly on this loop's constant factor.

This module is the *authoritative* semantics. When a current CSR
snapshot exists, :func:`repro.core.array_search.array_guided_search`
drains the same rung with whole-frontier numpy sweeps
(:func:`repro.graph.kernels.csr_push_drain`); it is held
answer-equivalent to this loop by ``tests/test_push_kernels.py`` and
shares the counter contract (one push per expansion, one edge access
per adjacency entry).
"""

from __future__ import annotations

import heapq

from repro.core.budget import BudgetExceeded
from repro.core.params import ORDER_GREEDY, PUSH_FORWARD
from repro.core.state import DirectionState, SearchContext
from repro.core.stats import QueryStats


def guided_search(
    ctx: SearchContext, state: DirectionState, stats: QueryStats
) -> bool:
    """Run Alg. 3 for one direction at ``ctx.epsilon_cur``.

    Returns ``True`` iff the two searches met (``s -> t`` proven).
    """
    epsilon = ctx.epsilon_cur
    alpha = ctx.params.alpha
    one_minus_alpha = 1.0 - alpha
    forward_style = ctx.params.push_style == PUSH_FORWARD
    greedy = ctx.params.push_order == ORDER_GREEDY
    other_visited = ctx.other(state).visited
    # Safety valve: a small multiple of Lemma 1's per-drain bound at the
    # contraction threshold (x d_avg for backward push), plus a graph-size
    # term so tiny epsilon_pre values cannot starve large frontiers.
    scale = 1.0 if forward_style else max(ctx.graph.average_degree, 1.0)
    push_budget = int(
        64
        + 10.0 * scale / (alpha * ctx.params.epsilon_pre)
        + 8 * ctx.n_reduced
    )

    # Cooperative cancellation: charge accrued edge accesses and test the
    # budget every ``budget_check_interval`` pushes. Residue/visited/
    # explored are consistent at every push boundary, so raising here
    # leaves state the degraded search can be seeded from.
    budget = ctx.budget
    check_interval = ctx.params.budget_check_interval
    charged = 0
    if budget is not None:
        budget.checkpoint()

    # Local bindings for the hot loop.
    residue = state.residue
    visited = state.visited
    explored = state.explored
    adj = ctx.graph.adjacency(state.forward)
    opposite_adj = ctx.graph.adjacency(not state.forward)
    find = ctx.find
    find_get = find.get
    super_id = state.super_sentinel
    super_adj = state.super_adj
    edge_accesses = 0
    pushes = 0

    def degree_of(v: int) -> int:
        if v == super_id:
            return len(state.super_adj)
        if v < 0:
            return max(len(ctx.other(state).super_adj), 1)
        return len(adj[v])

    # Seed the worklist with every currently pushable vertex. The greedy
    # discipline is a lazy max-heap on the normalized residue at enqueue
    # time: stale entries are re-validated on pop, duplicates are allowed
    # (bounded by the number of pushes), and correctness never depends on
    # the order — Alg. 3 says "choose any u".
    work = []
    in_work = set()
    for v, r in residue.items():
        if r <= 0.0:
            continue
        d = degree_of(v)
        if d == 0:
            residue[v] = 0.0
            explored.add(v)
        elif (r / d >= epsilon) if forward_style else (r >= epsilon):
            if greedy:
                work.append(((-r / d if forward_style else -r), v))
            else:
                work.append(v)
                in_work.add(v)
    if greedy:
        heapq.heapify(work)

    met = False
    while work:
        if greedy:
            _, u = heapq.heappop(work)
        else:
            u = work.pop()
            in_work.discard(u)
        r_u = residue.get(u, 0.0)
        if r_u <= 0.0:
            continue
        neighbors = super_adj if u == super_id else adj[u]
        d_u = len(neighbors)
        if d_u == 0:
            residue[u] = 0.0
            explored.add(u)
            continue
        if (r_u / d_u < epsilon) if forward_style else (r_u < epsilon):
            continue
        if pushes >= push_budget:
            break
        pushes += 1
        if budget is not None and pushes % check_interval == 0:
            try:
                budget.checkpoint(edge_accesses - charged)
            except BudgetExceeded:
                stats.guided_edge_accesses += edge_accesses
                stats.push_operations += pushes
                raise
            charged = edge_accesses
        if u not in explored:
            explored.add(u)
            state.int_edges += d_u
        residue[u] = 0.0
        fwd_share = one_minus_alpha * r_u / d_u  # forward-style share
        back_r = one_minus_alpha * r_u  # backward-style numerator
        for w_raw in neighbors:
            edge_accesses += 1
            w = find_get(w_raw, w_raw)
            if w == u:
                continue  # overlay self-loop (edge into the same super)
            if w not in visited:
                if w in other_visited:
                    met = True
                    break
                visited.add(w)
            if forward_style:
                new_r = residue.get(w, 0.0) + fwd_share
                residue[w] = new_r
                d_w = degree_of(w)
                if d_w == 0:
                    residue[w] = 0.0
                    explored.add(w)
                elif new_r / d_w >= epsilon:
                    if greedy:
                        heapq.heappush(work, (-new_r / d_w, w))
                    elif w not in in_work:
                        work.append(w)
                        in_work.add(w)
            else:
                # Backward push: divide by the *raw* receiver's degree
                # against the edge direction (see module docstring — the
                # lumped super-vertex degree would amplify mass).
                if w_raw >= 0:
                    divisor = max(len(opposite_adj[w_raw]), 1)
                else:
                    divisor = max(len(ctx.other(state).super_adj), 1)
                new_r = residue.get(w, 0.0) + back_r / divisor
                residue[w] = new_r
                if new_r >= epsilon:
                    if greedy:
                        heapq.heappush(work, (-new_r, w))
                    elif w not in in_work:
                        work.append(w)
                        in_work.add(w)
        if met:
            break

    if budget is not None:
        budget.charge(edge_accesses - charged)
    stats.guided_edge_accesses += edge_accesses
    stats.push_operations += pushes
    return met
