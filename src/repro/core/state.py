"""Per-query search state: direction states and the reduced-graph overlay.

Community contraction never mutates the base graph. Instead, each query
carries an overlay (the paper's "virtual updates", Sec. V-C): a ``find``
map sending contracted vertices to their super-vertex, plus explicit
adjacency for the two super-vertices. Every adjacency scan maps raw
neighbor ids through ``find`` on access.

Super-vertex ids are the sentinels ``SUPER_FORWARD = -1`` and
``SUPER_REVERSE = -2``; base-graph vertex ids must therefore be
non-negative wherever IFCA is used (checked at query time).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.budget import Budget, PartialSearchState
from repro.core.params import PUSH_FORWARD, ResolvedParams
from repro.graph.digraph import DynamicDiGraph

SUPER_FORWARD = -1
SUPER_REVERSE = -2


class DirectionState:
    """The state of one search direction (forward from ``s`` or reverse
    from ``t``): residues, visited/explored sets, the super-vertex, and the
    ``intEdges`` estimate used by the cost model.

    A ``__slots__`` class rather than a dataclass: two of these are built
    per query, and ``super_sentinel`` is read inside the hot loops.
    """

    __slots__ = (
        "forward",
        "residue",
        "visited",
        "explored",
        "int_edges",
        "super_id",
        "super_adj",
        "merged",
        "contractions",
        "super_sentinel",
    )

    def __init__(self, forward: bool) -> None:
        self.forward = forward
        self.residue: Dict[int, float] = {}
        self.visited: Set[int] = set()
        self.explored: Set[int] = set()
        self.int_edges = 0
        self.super_id = 0  # 0 = not created yet (never a real super id)
        self.super_adj: List[int] = []
        self.merged: Set[int] = set()
        self.contractions = 0
        self.super_sentinel = SUPER_FORWARD if forward else SUPER_REVERSE

    @property
    def has_super(self) -> bool:
        return self.super_id != 0


class SearchContext:
    """Everything one IFCA query needs: both direction states, the shared
    ``find`` overlay, and the running reduced-graph size counters."""

    __slots__ = (
        "graph",
        "params",
        "source",
        "target",
        "fwd",
        "rev",
        "find",
        "m_reduced",
        "n_reduced",
        "epsilon_cur",
        "budget",
    )

    def __init__(
        self,
        graph: DynamicDiGraph,
        params: ResolvedParams,
        source: int,
        target: int,
        budget: Optional[Budget] = None,
    ) -> None:
        self.graph = graph
        self.params = params
        self.source = source
        self.target = target
        self.fwd = DirectionState(forward=True)
        self.rev = DirectionState(forward=False)
        self.fwd.residue[source] = 1.0
        self.fwd.visited.add(source)
        self.rev.residue[target] = 1.0
        self.rev.visited.add(target)
        self.find: Dict[int, int] = {}
        self.m_reduced = graph.num_edges
        self.n_reduced = graph.num_vertices
        self.epsilon_cur = params.epsilon_init
        self.budget = budget

    # ------------------------------------------------------------------
    # Overlay-aware adjacency
    # ------------------------------------------------------------------
    def resolve(self, v: int) -> int:
        """Map a raw vertex id through the contraction overlay."""
        return self.find.get(v, v)

    def neighbors(self, state: DirectionState, v: int) -> List[int]:
        """Raw (unmapped) adjacency of ``v`` in ``state``'s direction.

        Callers must map each entry through :meth:`resolve`.
        """
        if state.has_super and v == state.super_id:
            return state.super_adj
        return self.graph.neighbors(v, state.forward)

    def degree(self, state: DirectionState, v: int) -> int:
        """The reduced-graph directional degree used by ``f_norm``/``f_dist``."""
        if state.has_super and v == state.super_id:
            return len(state.super_adj)
        if v < 0:
            # The *other* side's super-vertex: its adjacency in this
            # direction is never enumerated (visiting it is an immediate
            # meet), but distribution weights may ask for a degree.
            other = self.rev if state.forward else self.fwd
            return max(len(other.super_adj), 1)
        return (
            self.graph.out_degree(v) if state.forward else self.graph.in_degree(v)
        )

    def other(self, state: DirectionState) -> DirectionState:
        return self.rev if state.forward else self.fwd

    # ------------------------------------------------------------------
    # Push weighting (Sec. III-A)
    # ------------------------------------------------------------------
    def f_norm(self, state: DirectionState, v: int) -> float:
        """Threshold normalization: ``d(u)`` for forward push, 1 otherwise."""
        if self.params.push_style == PUSH_FORWARD:
            return float(self.degree(state, v))
        return 1.0

    def f_dist(self, state: DirectionState, sender: int, receiver: int) -> float:
        """Residue distribution divisor for edge ``sender -> receiver``
        (in the search direction's orientation)."""
        if self.params.push_style == PUSH_FORWARD:
            return float(self.degree(state, sender))
        # Backward push weights by the receiver's degree against the edge
        # direction: its in-degree when scanning out-edges and vice versa.
        return float(self._opposite_degree(state, receiver))

    def _opposite_degree(self, state: DirectionState, v: int) -> int:
        if v < 0:
            # Super-vertices: fall back to their stored adjacency size.
            side = self.fwd if v == SUPER_FORWARD else self.rev
            return max(len(side.super_adj), 1)
        d = self.graph.in_degree(v) if state.forward else self.graph.out_degree(v)
        return max(d, 1)

    # ------------------------------------------------------------------
    # Cost-model progress protocol (shared with ArraySearchContext)
    # ------------------------------------------------------------------
    def progress(self) -> "tuple[int, int, int, int, bool]":
        """``(explored_f, explored_r, int_edges_f, int_edges_r, started)``.

        The five numbers Alg. 6 reads each round. ``started`` is whether
        any exploration or contraction has happened yet — while it is
        ``False`` the decision depends only on ``(n, m, epsilon_cur)`` and
        the cost model may use its memoized round-1 answer. The array-state
        context (:class:`repro.core.array_search.ArraySearchContext`)
        implements the same protocol, which is all the cost model needs.
        """
        fwd, rev = self.fwd, self.rev
        started = bool(
            fwd.explored or rev.explored or fwd.merged or rev.merged
        )
        return (
            len(fwd.explored),
            len(rev.explored),
            fwd.int_edges,
            rev.int_edges,
            started,
        )

    # ------------------------------------------------------------------
    # Frontier for the BiBFS hand-off (Alg. 2 lines 18-19)
    # ------------------------------------------------------------------
    def frontier(self, state: DirectionState) -> List[int]:
        """Visited-but-unexplored vertices: exactly the vertices whose
        adjacency has not been fully enumerated yet.

        The paper defines the hand-off frontier as the positive-residue
        vertices; with contraction retaining frontier residues the two
        definitions coincide, and this one is robust to floating-point
        underflow (see DESIGN.md).
        """
        return [v for v in state.visited if v not in state.explored]

    # ------------------------------------------------------------------
    # Partial-state export for the degraded bounded search
    # ------------------------------------------------------------------
    def export_state(self) -> Optional[PartialSearchState]:
        """The interrupted search state, if soundly exportable.

        Only contraction-free queries export: once an overlay exists, the
        visited sets mix raw ids with super sentinels and no raw-graph
        seeding is sound — return ``None`` and let the degraded search
        restart from the endpoints. Visited-but-unexplored vertices are
        exactly the sound frontier (their adjacency was never fully
        enumerated; every explored vertex's neighbors are all visited).
        """
        if self.find or self.fwd.has_super or self.rev.has_super:
            return None
        return PartialSearchState(
            fwd_visited=set(self.fwd.visited),
            rev_visited=set(self.rev.visited),
            fwd_frontier=self.frontier(self.fwd),
            rev_frontier=self.frontier(self.rev),
        )
