"""Array-state guided search: Alg. 3/4/5 on the frozen CSR snapshot.

The dict twins (:mod:`repro.core.guided`, :mod:`repro.core.contraction`,
:mod:`repro.core.bibfs`) run one Python iteration per *edge*; this module
runs the same three phases as whole-frontier numpy passes over a
:class:`~repro.graph.snapshot.CSRSnapshot`, one interpreter dispatch per
*sweep*. :mod:`repro.core.ifca` picks between the two per query: the array
path whenever ``params.use_kernels and params.use_push_kernels`` and a
current-version snapshot is already frozen (``graph.csr(build=False)``),
the dict path otherwise (numpy absent, ``REPRO_NO_NUMPY``, kernels
switched off, or a mid-churn graph with no fresh snapshot). The dict twin
therefore remains the authoritative reference implementation — it is the
only path that exists on every install — and the array path must agree
with it on *verdicts* for every query (asserted across push styles ×
orders × contraction on/off by ``tests/test_push_kernels.py``).

State layout
------------
All per-direction state lives in dense arrays of length ``n + 2`` over
the snapshot's compacted indices, with two reserved *super slots*:
index ``n`` is the forward super-vertex, ``n + 1`` the reverse one (the
array counterparts of the dict overlay's ``SUPER_FORWARD`` /
``SUPER_REVERSE`` sentinels). Contraction is CSR-native:

* ``remap`` (int64, shared by both directions) sends a stored CSR target
  index to its current reduced-graph representative — identity until a
  contraction assigns merged members to their slot. Remap chains have
  length <= 1 by construction: a member of one side's community can never
  be merged into the *other* side's super-vertex without the queries
  having already met (the other slot is visited from birth), so
  ``remap[remap[x]] == remap[x]`` always and one gather-time composition
  suffices.
* ``overlay`` (int64 per direction) is the super-vertex's stored
  adjacency: representative ids captured at contraction time, re-composed
  through ``remap`` on every later gather. Rebuilding it is one
  O(|community| + boundary edges) array pass over the members' CSR rows
  plus the previous overlay, with MEET/EXHAUSTED detection vectorized
  (``other_visited[overlay].any()`` / ``len(overlay) == 0``).

Degrees: ``deg`` holds the reduced directional degree used for thresholds
and forward-style distribution (CSR row lengths for real vertices — the
dict twin also charges the *raw* row length, super edges included — and
the overlay lengths on the slots); ``opp_deg`` holds the clamped raw
degree against the direction (the backward-push divisor, deliberately raw
rather than lumped, see ``core.guided``'s module docstring).

Counter contract
----------------
Shared with the dict twin and asserted in tests: ``push_operations``
counts vertex expansions, ``guided_edge_accesses`` counts adjacency
entries scanned (the full reduced row per expansion). Lambda calibration
reads these counters, so both paths must mean the same thing by them —
the *totals* can still differ per query because push is not
order-confluent and sweeps expand vertices the lazy heap may never
revisit.
"""

from __future__ import annotations

from typing import Optional

from repro.core.budget import Budget, BudgetExceeded, PartialSearchState
from repro.core.contraction import ContractionOutcome
from repro.core.params import ORDER_GREEDY, PUSH_FORWARD, ResolvedParams
from repro.core.stats import QueryStats
from repro.graph import kernels
from repro.graph.digraph import DynamicDiGraph

np = kernels.np  # None when numpy is unavailable; ifca gates dispatch


def _degree_tables(snapshot):
    """Per-snapshot float64 degree tables, cached on the snapshot.

    ``(out_deg, in_deg, out_clamped, in_clamped)`` — the raw directional
    degrees and their ``max(d, 1)`` clamps. Snapshots are immutable, so
    the cache can never go stale; every query on the same frozen view
    shares the four arrays.
    """
    cached = getattr(snapshot, "_push_degree_tables", None)
    if cached is None:
        out_deg = (snapshot.out_offsets[1:] - snapshot.out_offsets[:-1]).astype(
            np.float64
        )
        in_deg = (snapshot.in_offsets[1:] - snapshot.in_offsets[:-1]).astype(
            np.float64
        )
        cached = (
            out_deg,
            in_deg,
            np.maximum(out_deg, 1.0),
            np.maximum(in_deg, 1.0),
        )
        snapshot._push_degree_tables = cached
    return cached


class ArrayDirectionState:
    """Dense per-direction search state (the array twin of
    :class:`~repro.core.state.DirectionState`)."""

    __slots__ = (
        "forward",
        "residue",
        "visited",
        "explored",
        "explored_count",
        "int_edges",
        "super_slot",
        "has_super",
        "overlay",
        "deg",
        "opp_deg",
        "cand",
        "merged_count",
        "contractions",
    )

    def __init__(self, forward: bool, size: int, super_slot: int) -> None:
        self.forward = forward
        self.residue = np.zeros(size, dtype=np.float64)
        self.visited = np.zeros(size, dtype=bool)
        self.explored = np.zeros(size, dtype=bool)
        self.explored_count = 0
        self.int_edges = 0
        self.super_slot = super_slot
        self.has_super = False
        self.overlay = np.empty(0, dtype=np.int64)
        self.deg = None  # bound by the context (shared until contraction)
        self.opp_deg = None
        self.cand = np.empty(0, dtype=np.int64)  # sorted residue superset
        self.merged_count = 0
        self.contractions = 0


class ArraySearchContext:
    """Everything one array-path IFCA query needs.

    Implements the same ``progress()`` protocol as
    :class:`~repro.core.state.SearchContext`, which is all the cost model
    reads; the reduced-size counters (``n_reduced`` / ``m_reduced`` /
    ``epsilon_cur``) follow the dict context's bookkeeping exactly.
    """

    __slots__ = (
        "graph",
        "snapshot",
        "params",
        "source",
        "target",
        "n_base",
        "fwd",
        "rev",
        "remap",
        "n_reduced",
        "m_reduced",
        "epsilon_cur",
        "budget",
    )

    def __init__(
        self,
        graph: DynamicDiGraph,
        snapshot,
        params: ResolvedParams,
        source: int,
        target: int,
        budget: Optional[Budget] = None,
    ) -> None:
        self.graph = graph
        self.snapshot = snapshot
        self.params = params
        self.source = source
        self.target = target
        n = snapshot.num_vertices
        self.n_base = n
        size = n + 2
        out_deg, in_deg, out_clamped, in_clamped = _degree_tables(snapshot)

        fwd = ArrayDirectionState(True, size, n)
        rev = ArrayDirectionState(False, size, n + 1)
        # Until the first contraction no super slot can appear in any
        # candidate/frontier/receiver array, so both directions borrow the
        # snapshot's shared size-``n`` degree tables — no per-query copies.
        # :meth:`_materialize_overlay_state` promotes them to private
        # slot-extended copies (and builds ``remap``) when a super-vertex
        # first exists.
        fwd.deg = out_deg
        fwd.opp_deg = in_clamped
        rev.deg = in_deg
        rev.opp_deg = out_clamped

        si = snapshot.index_of(source)
        ti = snapshot.index_of(target)
        fwd.residue[si] = 1.0
        fwd.visited[si] = True
        fwd.cand = np.array([si], dtype=np.int64)
        rev.residue[ti] = 1.0
        rev.visited[ti] = True
        rev.cand = np.array([ti], dtype=np.int64)
        self.fwd = fwd
        self.rev = rev
        self.remap = None  # identity until the first contraction
        self.n_reduced = graph.num_vertices
        self.m_reduced = graph.num_edges
        self.epsilon_cur = params.epsilon_init
        self.budget = budget

    # ------------------------------------------------------------------
    def other(self, state: ArrayDirectionState) -> ArrayDirectionState:
        return self.rev if state.forward else self.fwd

    def offsets_targets(self, state: ArrayDirectionState):
        if state.forward:
            return self.snapshot.out_offsets, self.snapshot.out_targets
        return self.snapshot.in_offsets, self.snapshot.in_targets

    def _materialize_overlay_state(self) -> None:
        """First contraction anywhere: build the identity ``remap`` and
        promote both directions' shared degree tables to private
        slot-extended copies.

        Deferred to here so contraction-free queries (the vast majority on
        well-connected graphs) never pay the three O(n) allocations.
        Directional reduced degrees: the own slot starts at 0 (overlay not
        built yet; :meth:`refresh_super_degrees` runs right after), the
        *other* slot at its clamped overlay size (1) — the dict twin's
        ``degree_of`` for a foreign sentinel. Backward-push divisors keep
        the clamped raw degree against the search direction, with 1.0 on
        the slots (a stored overlay entry can reference the foreign slot
        only transiently — referencing it is a meet).
        """
        if self.remap is not None:
            return
        n = self.n_base
        size = n + 2
        self.remap = np.arange(size, dtype=np.int64)
        out_deg, in_deg, out_clamped, in_clamped = _degree_tables(self.snapshot)
        fwd, rev = self.fwd, self.rev
        fwd.deg = np.empty(size, dtype=np.float64)
        fwd.deg[:n] = out_deg
        fwd.deg[n] = 0.0
        fwd.deg[n + 1] = 1.0
        rev.deg = np.empty(size, dtype=np.float64)
        rev.deg[:n] = in_deg
        rev.deg[n] = 1.0
        rev.deg[n + 1] = 0.0
        fwd.opp_deg = np.empty(size, dtype=np.float64)
        fwd.opp_deg[:n] = in_clamped
        fwd.opp_deg[n:] = 1.0
        rev.opp_deg = np.empty(size, dtype=np.float64)
        rev.opp_deg[:n] = out_clamped
        rev.opp_deg[n:] = 1.0

    def refresh_super_degrees(self) -> None:
        """Re-derive the four slot entries from the current overlays."""
        fwd, rev = self.fwd, self.rev
        own_f = float(len(fwd.overlay))
        own_r = float(len(rev.overlay))
        fwd.deg[fwd.super_slot] = own_f
        fwd.deg[rev.super_slot] = max(own_r, 1.0)
        rev.deg[rev.super_slot] = own_r
        rev.deg[fwd.super_slot] = max(own_f, 1.0)
        fwd.opp_deg[rev.super_slot] = max(own_r, 1.0)
        rev.opp_deg[fwd.super_slot] = max(own_f, 1.0)

    # ------------------------------------------------------------------
    # Cost-model progress protocol (shared with SearchContext)
    # ------------------------------------------------------------------
    def progress(self):
        """``(explored_f, explored_r, int_edges_f, int_edges_r, started)``."""
        fwd, rev = self.fwd, self.rev
        started = bool(
            fwd.explored_count
            or rev.explored_count
            or fwd.merged_count
            or rev.merged_count
            or fwd.contractions
            or rev.contractions
        )
        return (
            fwd.explored_count,
            rev.explored_count,
            fwd.int_edges,
            rev.int_edges,
            started,
        )

    # ------------------------------------------------------------------
    # Partial-state export for the degraded bounded search
    # ------------------------------------------------------------------
    def export_state(self) -> Optional[PartialSearchState]:
        """The interrupted search state, if soundly exportable.

        Mirrors :meth:`repro.core.state.SearchContext.export_state`:
        only contraction-free queries export (``remap`` materializes on
        the first contraction, so ``remap is None`` is exactly the
        contraction-free condition), translated back to original vertex
        ids through the snapshot's id table.
        """
        if self.remap is not None:
            return None
        ids = self.snapshot.vertex_ids
        n = self.n_base
        fwd, rev = self.fwd, self.rev
        return PartialSearchState(
            fwd_visited=set(ids[np.flatnonzero(fwd.visited[:n])].tolist()),
            rev_visited=set(ids[np.flatnonzero(rev.visited[:n])].tolist()),
            fwd_frontier=ids[_handoff_frontier(fwd)].tolist(),
            rev_frontier=ids[_handoff_frontier(rev)].tolist(),
        )


# ----------------------------------------------------------------------
# Alg. 3 — one guided drain
# ----------------------------------------------------------------------
def array_guided_search(
    ctx: ArraySearchContext, state: ArrayDirectionState, stats: QueryStats
) -> bool:
    """Run one drain at ``ctx.epsilon_cur`` through the sweep kernel.

    Returns ``True`` iff the two searches met. Budget formula, counter
    semantics, and the dangling/self-loop rules all mirror
    :func:`repro.core.guided.guided_search`; only the push *order* differs
    (threshold-synchronous sweeps instead of a lazy worklist), which is
    free by Alg. 3's "choose any u".
    """
    params = ctx.params
    forward_style = params.push_style == PUSH_FORWARD
    scale = 1.0 if forward_style else max(ctx.graph.average_degree, 1.0)
    push_budget = int(
        64
        + 10.0 * scale / (params.alpha * params.epsilon_pre)
        + 8 * ctx.n_reduced
    )
    offsets, targets = ctx.offsets_targets(state)
    met, cand, pushes, accesses, int_edges, explored_added = kernels.csr_push_drain(
        offsets,
        targets,
        state.deg,
        state.opp_deg,
        ctx.remap,
        state.overlay,
        state.super_slot,
        state.cand,
        state.residue,
        state.visited,
        state.explored,
        ctx.other(state).visited,
        ctx.epsilon_cur,
        params.alpha,
        forward_style,
        params.push_order == ORDER_GREEDY,
        push_budget,
    )
    state.cand = cand
    state.int_edges += int_edges
    state.explored_count += explored_added
    stats.guided_edge_accesses += accesses
    stats.push_operations += pushes
    # One drain is the checkpoint granularity on the array path: sweeps
    # complete whole frontiers, so state is consistent exactly here. A met
    # answer is never discarded — the budget only interrupts open searches.
    budget = ctx.budget
    if budget is not None:
        budget.charge(accesses)
        if not met:
            budget.checkpoint()
    return met


# ----------------------------------------------------------------------
# Alg. 4 — CSR-native community contraction
# ----------------------------------------------------------------------
def array_community_contraction(
    ctx: ArraySearchContext, state: ArrayDirectionState, stats: QueryStats
) -> ContractionOutcome:
    """Contract the explored set into the direction's super slot.

    The dict twin's per-edge rebuild becomes: flip ``remap`` for the
    members (one scatter), gather their CSR rows plus the previous
    overlay, compose ``remap``, drop intra-community entries, and
    ``np.unique`` the boundary — O(|community| + boundary edges) with
    MEET (``other.visited[overlay].any()``) and EXHAUSTED
    (``len(overlay) == 0``) read off the result. Trigger conditions and
    all reduced-size bookkeeping mirror
    :func:`repro.core.contraction.community_contraction`.
    """
    if not ctx.params.use_contraction:
        return ContractionOutcome.NOT_TRIGGERED
    if ctx.epsilon_cur >= ctx.params.epsilon_pre:
        return ContractionOutcome.NOT_TRIGGERED
    if state.explored_count == 0:
        return ContractionOutcome.NOT_TRIGGERED

    other = ctx.other(state)
    slot = state.super_slot
    ctx._materialize_overlay_state()
    if not state.has_super:
        state.has_super = True
        ctx.n_reduced += 1
        state.visited[slot] = True

    members = np.flatnonzero(state.explored)
    real = members[members < ctx.n_base]
    ctx.remap[real] = slot

    offsets, targets = ctx.offsets_targets(state)
    raw = kernels.gather_rows(offsets, targets, real)
    if len(state.overlay):
        # The previous overlay is always re-merged (whether or not the
        # old super was re-explored this round, its stored boundary still
        # holds frontier vertices).
        raw = np.concatenate([raw, state.overlay])
    mapped = ctx.remap[raw]
    overlay = np.unique(mapped[mapped != slot])
    met_other = bool(len(overlay)) and bool(other.visited[overlay].any())

    removed = len(real)
    ctx.n_reduced -= removed
    ctx.m_reduced = max(ctx.m_reduced - state.int_edges, len(overlay))
    if state.forward:
        stats.merged_forward += removed
        stats.contractions_forward += 1
    else:
        stats.merged_reverse += removed
        stats.contractions_reverse += 1
    state.merged_count += removed
    state.visited[real] = False
    state.residue[real] = 0.0
    state.explored[:] = False
    state.explored_count = 0
    state.int_edges = 0
    state.residue[slot] = 1.0
    # Merged members drop out of the candidate list at the next sweep's
    # residue filter (their residue was just zeroed); the slot joins it.
    state.cand = np.unique(np.append(state.cand, slot))
    state.overlay = overlay
    state.contractions += 1
    ctx.refresh_super_degrees()
    ctx.epsilon_cur = ctx.params.epsilon_init

    if met_other:
        return ContractionOutcome.MEET
    if len(overlay) == 0:
        return ContractionOutcome.EXHAUSTED
    return ContractionOutcome.CONTRACTED


# ----------------------------------------------------------------------
# Alg. 5 — overlay-aware vectorized hand-off BiBFS
# ----------------------------------------------------------------------
def array_frontier_bibfs(ctx: ArraySearchContext, stats: QueryStats) -> bool:
    """Run the hand-off BiBFS on array state, overlay included.

    Unlike the PR 2 read-path kernel (``csr_bibfs_frontiers``), which
    required an *empty* overlay, this twin composes ``remap`` at gather
    time, so contracted queries stay on the vectorized substrate all the
    way to the answer.
    """
    fwd, rev = ctx.fwd, ctx.rev
    budget = ctx.budget
    cur_f = _handoff_frontier(fwd)
    cur_r = _handoff_frontier(rev)
    accesses = 0
    charged = 0
    met = False
    while len(cur_f) and len(cur_r):
        if budget is not None:
            delta = accesses - charged
            charged = accesses
            try:
                budget.checkpoint(delta)
            except BudgetExceeded as exc:
                stats.bibfs_edge_accesses += accesses
                stats.used_kernel = True
                if exc.partial is None and ctx.remap is None:
                    # Both frontiers are exact at the loop head (every
                    # prior layer was fully enumerated), so they — not
                    # the stale cand/explored arrays — are the sound
                    # resumable state. Contracted queries export nothing.
                    exc.partial = _export_bibfs_partial(ctx, cur_f, cur_r)
                raise
        met, cur_f, acc = _expand_overlay(ctx, fwd, cur_f, rev.visited)
        accesses += acc
        if met:
            break
        if not len(cur_f):
            break
        met, cur_r, acc = _expand_overlay(ctx, rev, cur_r, fwd.visited)
        accesses += acc
        if met:
            break
    if budget is not None:
        budget.charge(accesses - charged)
    stats.bibfs_edge_accesses += accesses
    stats.used_kernel = True
    return met


def _export_bibfs_partial(ctx, cur_f, cur_r) -> PartialSearchState:
    """Partial state at an array-BiBFS layer boundary (original ids).

    Only called when ``ctx.remap is None``, so every visited index and
    frontier entry is a real compacted vertex (< ``n_base``).
    """
    ids = ctx.snapshot.vertex_ids
    n = ctx.n_base
    return PartialSearchState(
        fwd_visited=set(ids[np.flatnonzero(ctx.fwd.visited[:n])].tolist()),
        rev_visited=set(ids[np.flatnonzero(ctx.rev.visited[:n])].tolist()),
        fwd_frontier=ids[cur_f].tolist(),
        rev_frontier=ids[cur_r].tolist(),
    )


def _handoff_frontier(state: ArrayDirectionState):
    """Visited-but-unexplored vertices, read off the candidate list.

    Residue is only ever zeroed where ``explored`` is set (frontier drains,
    dangling parking, contraction members), so every visited-unexplored
    vertex still holds residue and therefore sits in ``cand`` — an
    O(|cand|) extraction instead of an O(n) scan of the state arrays.
    """
    cand = state.cand
    return cand[state.visited[cand] & ~state.explored[cand]]


def _expand_overlay(ctx, state, frontier, other_visited):
    """One whole-layer expansion with remap/overlay composition.

    The visited-membership filter subsumes the dict loop's same-super
    self-edge skip: a gathered entry mapping back to its own source (or
    slot) is necessarily already visited.
    """
    offsets, targets = ctx.offsets_targets(state)
    real = frontier[frontier < ctx.n_base]
    raw = kernels.gather_rows(offsets, targets, real)
    if len(real) != len(frontier) and len(state.overlay):
        raw = np.concatenate([raw, state.overlay])
    accesses = len(raw)
    if accesses == 0:
        return False, raw, 0
    mapped = ctx.remap[raw] if ctx.remap is not None else raw
    fresh = mapped[~state.visited[mapped]]
    if len(fresh) and other_visited[fresh].any():
        return True, fresh, accesses
    state.visited[fresh] = True
    return False, np.unique(fresh), accesses
