"""Per-query statistics.

Edge accesses are "the main factor influencing the query processing time"
of index-free methods (Sec. IV, Fig. 1), so every search component counts
them; benchmarks report both wall time and these counters to separate
algorithmic work from interpreter constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class QueryStats:
    """Counters accumulated over one reachability query."""

    #: Edge accesses during probability-guided search (both directions).
    guided_edge_accesses: int = 0
    #: Edge accesses during the BiBFS phase (0 when no switch happened).
    bibfs_edge_accesses: int = 0
    #: Individual push operations (vertex expansions) in guided search.
    push_operations: int = 0
    #: Community contractions performed, forward + reverse.
    contractions_forward: int = 0
    contractions_reverse: int = 0
    #: Main-loop rounds executed (Alg. 2 while iterations).
    rounds: int = 0
    #: Whether the cost model (or the forced override) switched to BiBFS.
    switched_to_bibfs: bool = False
    #: Which component produced the final answer:
    #: "trivial" | "guided" | "contraction" | "exhausted" | "bibfs".
    terminated_by: str = ""
    #: The query answer, once known.
    result: Optional[bool] = None
    #: Vertices merged into the two super-vertices.
    merged_forward: int = 0
    merged_reverse: int = 0
    #: Whether the BiBFS phase ran on the vectorized CSR kernel.
    used_kernel: bool = False
    #: Whether the guided phase ran on the array-state push kernels
    #: (:mod:`repro.core.array_search`). The counter contract is shared:
    #: ``push_operations`` counts vertex expansions and
    #: ``guided_edge_accesses`` counts adjacency entries scanned, in the
    #: same units on the dict and array paths (lambda calibration relies
    #: on it).
    used_push_kernel: bool = False
    #: Whether the query was interrupted by a cooperative budget
    #: (:class:`~repro.core.budget.BudgetExceeded` was raised); the
    #: counters then cover only the work done up to the interrupt.
    budget_exhausted: bool = False

    @property
    def edge_accesses(self) -> int:
        """Total edge accesses across both phases (the paper's cost unit)."""
        return self.guided_edge_accesses + self.bibfs_edge_accesses

    @property
    def contractions(self) -> int:
        return self.contractions_forward + self.contractions_reverse

    def merge(self, other: "QueryStats") -> None:
        """Accumulate another query's counters into this one (for averages)."""
        self.guided_edge_accesses += other.guided_edge_accesses
        self.bibfs_edge_accesses += other.bibfs_edge_accesses
        self.push_operations += other.push_operations
        self.contractions_forward += other.contractions_forward
        self.contractions_reverse += other.contractions_reverse
        self.rounds += other.rounds
        self.merged_forward += other.merged_forward
        self.merged_reverse += other.merged_reverse
        if other.switched_to_bibfs:
            self.switched_to_bibfs = True
        if other.used_kernel:
            self.used_kernel = True
        if other.used_push_kernel:
            self.used_push_kernel = True
        if other.budget_exhausted:
            self.budget_exhausted = True
