"""IFCA parameters and their heuristic defaults (Sec. VI-A4).

The paper's parameter study (Sec. VI-A) concludes the parameters can be
chosen heuristically:

* ``epsilon_pre = 100 / m`` — smaller on larger/denser graphs;
* ``alpha = 0.1`` — following local community detection practice;
* ``epsilon_init = 100 * epsilon_pre``;
* ``step = 10``.

``epsilon_pre`` and ``epsilon_init`` default to ``None`` here and are
resolved against the *current snapshot's* edge count at query time, so a
long-lived engine tracks the paper's ``100/m`` rule as the graph evolves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.graph.digraph import DynamicDiGraph

#: Push weighting styles (Sec. III-A): forward push divides by the sender's
#: out-degree and normalizes thresholds by it; backward push divides by the
#: receiver's in-degree and uses no normalization.
PUSH_FORWARD = "forward"
PUSH_BACKWARD = "backward"

#: Absolute floor for the shrinking threshold, preventing denormal-float
#: stalls on pathological inputs. Far below any epsilon_pre in practice.
EPSILON_FLOOR = 2.0 ** -60

#: Worklist disciplines for Alg. 3's "choose any u" (the paper leaves the
#: order free): plain stack order (the default — cheapest per operation),
#: or greedy highest-residue-first, which follows the PPR mass and touches
#: intra-community destinations after fewer edge accesses at the price of
#: a heap operation per push (see the push-order ablation bench).
ORDER_LIFO = "lifo"
ORDER_GREEDY = "greedy"


@dataclass(frozen=True)
class IFCAParams:
    """User-facing tunables of the IFCA framework.

    ``use_contraction`` / ``use_cost_model`` select the paper's ablation
    variants; ``force_switch_round`` (used by the Tab. IV oracle) overrides
    the cost model and hands over to BiBFS after exactly that many main-loop
    rounds (0 = immediately).
    """

    alpha: float = 0.1
    epsilon_pre: Optional[float] = None
    epsilon_init: Optional[float] = None
    step: float = 10.0
    push_style: str = PUSH_FORWARD
    push_order: str = ORDER_LIFO
    lambda_ratio: float = 1.7
    beta: Optional[float] = None
    use_contraction: bool = True
    use_cost_model: bool = True
    force_switch_round: Optional[int] = None
    max_rounds: int = 10_000
    #: Dispatch BiBFS phases to the vectorized CSR kernels whenever a
    #: current-version snapshot is already frozen (``graph.csr(build=False)``).
    #: Semantics are identical either way; turning this off forces the dict
    #: path even when a snapshot is available (the A/B harness does).
    use_kernels: bool = True
    #: Additionally run the guided search itself (Alg. 3 drains, Alg. 4
    #: contraction, the Alg. 5 hand-off) on the array-state kernels
    #: (:mod:`repro.core.array_search`) when a snapshot is frozen. Requires
    #: ``use_kernels``; turning only this off keeps the BiBFS read-path
    #: kernels while pinning the guided phase to the dict twin (the push
    #: A/B harness does exactly that).
    use_push_kernels: bool = True
    #: Pushes between cooperative :class:`~repro.core.budget.Budget`
    #: checkpoints inside one guided drain. Smaller values tighten
    #: deadline adherence at the price of a clock read per interval;
    #: irrelevant when queries carry no budget.
    budget_check_interval: int = 256
    #: Shard-worker fan-out the *serving* layer should deploy for this
    #: configuration (:mod:`repro.shard`): 0/1 = single-process serving,
    #: K >= 2 = K shared-memory shard workers behind the scatter–gather
    #: router. The engine itself ignores it — it is carried here so one
    #: params object can describe a full deployment and flow through
    #: config pipelines alongside the query-time tunables.
    shards: int = 0
    #: Stand up the incremental DL/BL label tier
    #: (:mod:`repro.graph.labels`) as the serving ladder's third pruner.
    #: Like ``shards`` this is a deployment descriptor the engine itself
    #: ignores — the serving layer reads it; without numpy the tier is
    #: skipped regardless.
    use_labels: bool = True
    #: Bits per label side per vertex (a multiple of 64, >= 64): word 0
    #: is the exact landmark word, the rest are bloom words. More bits
    #: sharpen the negative rule at linear memory/AND cost.
    label_bits: int = 256

    def __post_init__(self) -> None:
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if self.step <= 1:
            raise ValueError("step must be > 1")
        if self.push_style not in (PUSH_FORWARD, PUSH_BACKWARD):
            raise ValueError(f"unknown push_style {self.push_style!r}")
        if self.push_order not in (ORDER_LIFO, ORDER_GREEDY):
            raise ValueError(f"unknown push_order {self.push_order!r}")
        if self.epsilon_pre is not None and self.epsilon_pre <= 0:
            raise ValueError("epsilon_pre must be positive")
        if self.epsilon_init is not None and self.epsilon_init <= 0:
            raise ValueError("epsilon_init must be positive")
        if self.lambda_ratio <= 0:
            raise ValueError("lambda_ratio must be positive")
        if self.beta is not None and not 0 < self.beta < 1:
            raise ValueError("beta must be in (0, 1)")
        if self.max_rounds <= 0:
            raise ValueError("max_rounds must be positive")
        if self.budget_check_interval <= 0:
            raise ValueError("budget_check_interval must be positive")
        if self.shards < 0:
            raise ValueError("shards must be non-negative")
        if self.label_bits < 64 or self.label_bits % 64:
            raise ValueError("label_bits must be a positive multiple of 64")

    def with_overrides(self, **kwargs: object) -> "IFCAParams":
        """A copy with some fields replaced (frozen-dataclass convenience)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]

    def resolve(self, graph: DynamicDiGraph) -> "ResolvedParams":
        """Bind the ``None`` defaults to the current snapshot (Sec. VI-A4)."""
        m = max(graph.num_edges, 1)
        epsilon_pre = self.epsilon_pre if self.epsilon_pre is not None else 100.0 / m
        epsilon_init = (
            self.epsilon_init
            if self.epsilon_init is not None
            else 100.0 * epsilon_pre
        )
        if epsilon_init < epsilon_pre:
            raise ValueError("epsilon_init must be >= epsilon_pre")
        return ResolvedParams(
            alpha=self.alpha,
            epsilon_pre=epsilon_pre,
            epsilon_init=epsilon_init,
            step=self.step,
            push_style=self.push_style,
            push_order=self.push_order,
            lambda_ratio=self.lambda_ratio,
            beta=self.beta,
            use_contraction=self.use_contraction,
            use_cost_model=self.use_cost_model,
            force_switch_round=self.force_switch_round,
            max_rounds=self.max_rounds,
            use_kernels=self.use_kernels,
            use_push_kernels=self.use_push_kernels,
            budget_check_interval=self.budget_check_interval,
        )


@dataclass(frozen=True)
class ResolvedParams:
    """Concrete per-query parameters with every default filled in."""

    alpha: float
    epsilon_pre: float
    epsilon_init: float
    step: float
    push_style: str
    push_order: str
    lambda_ratio: float
    beta: Optional[float]
    use_contraction: bool
    use_cost_model: bool
    force_switch_round: Optional[int]
    max_rounds: int
    use_kernels: bool = True
    use_push_kernels: bool = True
    budget_check_interval: int = 256
