"""The push-based baseline — Algorithm 1 (and the Fig. 7 tuning loop).

A single-direction push from ``s`` that returns ``True`` the moment the
destination is touched and gives up once no residue is pushable at the
threshold ``epsilon``. Push always *under*-estimates PPR, so this baseline
is one-sided: positives are certain, negatives may be false (Property 1
only transfers exactly at ``epsilon -> 0``).

``tune_epsilon_for_precision`` reproduces the paper's Base@90% / Base@100%
protocol: iteratively lower ``epsilon`` until the measured precision on a
query workload reaches the target.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.params import PUSH_BACKWARD, PUSH_FORWARD
from repro.core.stats import QueryStats
from repro.graph.digraph import DynamicDiGraph
from repro.ppr.common import Worklist


def push_reachability(
    graph: DynamicDiGraph,
    source: int,
    target: int,
    alpha: float = 0.1,
    epsilon: float = 1e-4,
    push_style: str = PUSH_FORWARD,
    stats: Optional[QueryStats] = None,
) -> bool:
    """Alg. 1: approximate reachability by thresholded residue push.

    May return a false negative (never a false positive).
    """
    if push_style not in (PUSH_FORWARD, PUSH_BACKWARD):
        raise ValueError(f"unknown push_style {push_style!r}")
    if stats is None:
        stats = QueryStats()
    if source == target:
        stats.result = True
        return True
    if source not in graph or target not in graph:
        stats.result = False
        return False

    forward_style = push_style == PUSH_FORWARD
    residue = {source: 1.0}
    work = Worklist()
    if _eligible(graph, source, 1.0, epsilon, forward_style):
        work.push(source)

    while work:
        u = work.pop()
        r_u = residue.get(u, 0.0)
        if not _eligible(graph, u, r_u, epsilon, forward_style):
            continue
        stats.push_operations += 1
        residue[u] = 0.0
        out = graph.out_neighbors(u)
        d_out = len(out)
        for w in out:
            stats.guided_edge_accesses += 1
            if w == target:
                stats.result = True
                return True
            divisor = d_out if forward_style else max(graph.in_degree(w), 1)
            new_r = residue.get(w, 0.0) + (1.0 - alpha) * r_u / divisor
            residue[w] = new_r
            if _eligible(graph, w, new_r, epsilon, forward_style):
                work.push(w)
    stats.result = False
    return False


def _eligible(
    graph: DynamicDiGraph,
    v: int,
    residue: float,
    epsilon: float,
    forward_style: bool,
) -> bool:
    if residue <= 0.0:
        return False
    d = graph.out_degree(v)
    if d == 0:
        return False  # nothing to push along
    norm = d if forward_style else 1
    return residue / norm >= epsilon


def baseline_precision(
    graph: DynamicDiGraph,
    queries: Sequence[Tuple[int, int]],
    ground_truth: Sequence[bool],
    alpha: float,
    epsilon: float,
    push_style: str = PUSH_FORWARD,
) -> float:
    """The fraction of queries Alg. 1 answers correctly at ``epsilon``."""
    if len(queries) != len(ground_truth):
        raise ValueError("queries and ground_truth must have equal length")
    if not queries:
        return 1.0
    correct = 0
    for (s, t), expected in zip(queries, ground_truth):
        got = push_reachability(graph, s, t, alpha, epsilon, push_style)
        if got == expected:
            correct += 1
    return correct / len(queries)


def tune_epsilon_for_precision(
    graph: DynamicDiGraph,
    queries: Sequence[Tuple[int, int]],
    ground_truth: Sequence[bool],
    target_precision: float,
    alpha: float = 0.1,
    epsilon_start: float = 1e-2,
    shrink: float = 10.0,
    max_steps: int = 30,
    push_style: str = PUSH_FORWARD,
) -> Tuple[float, float]:
    """Lower ``epsilon`` geometrically until precision >= target.

    Returns ``(epsilon, achieved_precision)``. Mirrors the paper's
    "iteratively lower epsilon until the precision is at least 90% / equal
    to 100%" protocol for Fig. 7. Raises ``RuntimeError`` if the target is
    not reached within ``max_steps``.
    """
    if not 0 < target_precision <= 1:
        raise ValueError("target_precision must be in (0, 1]")
    epsilon = epsilon_start
    for _ in range(max_steps):
        precision = baseline_precision(
            graph, queries, ground_truth, alpha, epsilon, push_style
        )
        if precision >= target_precision:
            return epsilon, precision
        epsilon /= shrink
    raise RuntimeError(
        f"target precision {target_precision} not reached within "
        f"{max_steps} epsilon reductions"
    )
