"""Community contraction — Algorithm 4.

Once the shrinking threshold drops below ``epsilon_pre``, the explored
vertices around an endpoint have PPR above ``O(epsilon_pre)`` and form a
superset of the top-PPR community (the Andersen–Chung–Lang correlation the
paper exploits), so they are contracted into a super-vertex and the search
restarts on the reduced graph.

Per DESIGN.md we contract exactly the *explored* set: visited-but-
unexplored frontier vertices stay in the graph, become neighbors of the
super-vertex (each received residue over an edge from an explored vertex),
and keep their residues. This is the reading required by the paper's own
correctness proof (Thm. 1).

The contraction returns one of four outcomes; two of them terminate the
query:

* ``MEET`` — while rebuilding the super-vertex adjacency, an edge from this
  side's community to a vertex visited by the *other* side was found, which
  already proves ``s -> t``;
* ``EXHAUSTED`` — the new super-vertex has degree 0, i.e. this side's
  reachable set has been enumerated completely without meeting the other
  side, proving the query negative (a safe strengthening of Alg. 2's
  line 16, which waits for *both* sides to exhaust).

This module is the *authoritative* semantics. On the array-state path,
:func:`repro.core.array_search.array_community_contraction` performs the
same merge as an O(|community| + boundary edges) pass over the CSR rows —
a vertex-remap array plus an overlay edge buffer composed at gather time,
with the same four outcomes detected vectorized — and is held equivalent
by ``tests/test_push_kernels.py``.
"""

from __future__ import annotations

import enum

from repro.core.state import DirectionState, SearchContext
from repro.core.stats import QueryStats


class ContractionOutcome(enum.Enum):
    NOT_TRIGGERED = "not_triggered"
    CONTRACTED = "contracted"
    MEET = "meet"
    EXHAUSTED = "exhausted"


def community_contraction(
    ctx: SearchContext, state: DirectionState, stats: QueryStats
) -> ContractionOutcome:
    """Run Alg. 4 for one direction if its trigger condition holds."""
    if not ctx.params.use_contraction:
        return ContractionOutcome.NOT_TRIGGERED
    if ctx.epsilon_cur >= ctx.params.epsilon_pre:
        return ContractionOutcome.NOT_TRIGGERED
    if not state.explored:
        # Nothing new was explored since the last contraction; re-running
        # would reset epsilon and loop forever. Let the threshold keep
        # shrinking instead (see DESIGN.md, termination discussion).
        return ContractionOutcome.NOT_TRIGGERED

    other = ctx.other(state)
    sentinel = state.super_sentinel
    first_contraction = not state.has_super
    if first_contraction:
        state.super_id = sentinel
        ctx.n_reduced += 1
        state.visited.add(sentinel)

    # The newly merged set: everything explored since the last contraction
    # (which includes the previous super-vertex whenever it was expanded).
    new_members = set(state.explored)
    absorbing_super = sentinel in new_members
    to_scan = list(new_members)
    if not absorbing_super and not first_contraction:
        # The old super-vertex was not re-explored this round; its
        # adjacency still holds frontier vertices and must be re-merged
        # into the rebuilt list.
        to_scan.append(sentinel)

    for v in new_members:
        if v != sentinel:
            ctx.find[v] = sentinel
            state.merged.add(v)

    # Rebuild the super-vertex adjacency: all neighbors of the scanned
    # vertices that are outside the merged community, deduplicated.
    new_adj = []
    seen = set()
    met_other = False
    old_super_adj = state.super_adj
    for v in to_scan:
        raw = old_super_adj if v == sentinel else ctx.graph.neighbors(v, state.forward)
        for w_raw in raw:
            w = ctx.find.get(w_raw, w_raw)
            if w == sentinel or w in seen:
                continue
            if w in other.visited:
                met_other = True
            seen.add(w)
            new_adj.append(w)
    state.super_adj = new_adj

    # Bookkeeping: merged vertices leave the reduced graph entirely.
    removed = len(new_members) - (1 if absorbing_super else 0)
    ctx.n_reduced -= removed
    ctx.m_reduced = max(ctx.m_reduced - state.int_edges, len(new_adj))
    stats.merged_forward += removed if state.forward else 0
    stats.merged_reverse += removed if not state.forward else 0
    for v in new_members:
        if v != sentinel:
            state.visited.discard(v)
            state.residue.pop(v, None)
    state.explored.clear()
    state.int_edges = 0
    state.residue[sentinel] = 1.0
    state.contractions += 1
    if state.forward:
        stats.contractions_forward += 1
    else:
        stats.contractions_reverse += 1
    ctx.epsilon_cur = ctx.params.epsilon_init

    if met_other:
        return ContractionOutcome.MEET
    if not new_adj:
        return ContractionOutcome.EXHAUSTED
    return ContractionOutcome.CONTRACTED
