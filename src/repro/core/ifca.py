"""The IFCA main algorithm — Algorithm 2.

:class:`IFCA` binds the framework to one dynamic graph and answers exact
reachability queries. Being index-free, updates cost exactly one adjacency
modification; the engine only refreshes the cost model's cached power-law
fit occasionally.

The main loop per query:

1. cost-based strategy selection (Alg. 6) — break to BiBFS when cheaper;
2. forward probability-guided search (Alg. 3) — ``True`` on meet;
3. forward community contraction (Alg. 4) — may also prove a meet, or
   prove the query negative by exhausting the forward reachable set;
4. the reverse-direction twins of 2 and 3;
5. shrink ``epsilon_cur`` by ``step`` and repeat.

Termination notes (DESIGN.md): exhaustion is detected per side (a
strengthening of Alg. 2 line 16, which waits for both sides), contraction
is skipped when nothing new was explored (avoids an epsilon-reset livelock)
and ``epsilon_cur`` is floored, and a ``max_rounds`` safety valve falls
back to the always-terminating BiBFS — so the engine is total on any input.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.baselines.base import ReachabilityMethod
from repro.baselines.bibfs import bibfs_is_reachable
from repro.core.array_search import (
    ArraySearchContext,
    array_community_contraction,
    array_frontier_bibfs,
    array_guided_search,
)
from repro.core.bibfs import frontier_bibfs
from repro.core.budget import Budget, BudgetExceeded
from repro.core.contraction import ContractionOutcome, community_contraction
from repro.core.cost import CostModel
from repro.core.guided import guided_search
from repro.core.params import EPSILON_FLOOR, IFCAParams
from repro.core.state import SearchContext
from repro.core.stats import QueryStats
from repro.graph import kernels
from repro.graph.digraph import DynamicDiGraph


class IFCA:
    """The index-free community-aware reachability engine.

    Parameters
    ----------
    graph:
        The dynamic graph to answer queries on. Vertex ids must be
        non-negative (the contraction overlay reserves negative sentinels).
    params:
        Tunables; the default follows the paper's heuristic choices.
    """

    #: Feature flag for callers (the serving layer probes it before
    #: passing ``budget=`` — third-party engines behind the same interface
    #: may not accept the keyword).
    supports_budget = True

    def __init__(
        self,
        graph: DynamicDiGraph,
        params: Optional[IFCAParams] = None,
    ) -> None:
        self.graph = graph
        self.params = params if params is not None else IFCAParams()
        self._cost_model: Optional[CostModel] = None
        self._resolved = None
        self._resolved_edges = -1
        self._beta: Optional[float] = None
        self._beta_edges = -1

    # ------------------------------------------------------------------
    # Updates (index-free: adjacency only)
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> None:
        if u < 0 or v < 0:
            raise ValueError("IFCA requires non-negative vertex ids")
        self.graph.add_edge(u, v)

    def delete_edge(self, u: int, v: int) -> None:
        self.graph.remove_edge(u, v)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def is_reachable(self, source: int, target: int) -> bool:
        """Exact reachability ``source -> target``."""
        answer, _ = self.query_with_stats(source, target)
        return answer

    def query_with_stats(
        self,
        source: int,
        target: int,
        budget: Optional[Budget] = None,
    ) -> Tuple[bool, QueryStats]:
        """Exact reachability plus the per-query counters.

        ``budget``, when given, is checkpointed cooperatively at drain,
        layer, and round boundaries. An exhausted budget raises
        :class:`~repro.core.budget.BudgetExceeded` with ``exc.partial``
        set to the sound resumable search state when one exists
        (contraction-free queries only) and ``exc.query_stats`` holding
        the counters accrued up to the interrupt.
        """
        stats = QueryStats()
        if source == target:
            stats.result = True
            stats.terminated_by = "trivial"
            return True, stats
        if source not in self.graph or target not in self.graph:
            stats.result = False
            stats.terminated_by = "trivial"
            return False, stats
        if source < 0 or target < 0:
            raise ValueError("IFCA requires non-negative vertex ids")

        params = self._resolve_params()
        cost_model = self._get_cost_model(params)
        if budget is not None:
            budget.checkpoint()  # pre-exhausted budgets fail before work

        # Fast path: when the round-1 strategy decision is already
        # "switch", Alg. 2 degenerates to plain BiBFS from {s} / {t} — run
        # it directly without building any guided-search state.
        immediate = params.force_switch_round == 0 or (
            params.force_switch_round is None
            and params.use_cost_model
            and cost_model.initial_switch_decision(
                self.graph.num_vertices, self.graph.num_edges, params.epsilon_init
            )
        )
        ctx = None
        try:
            if immediate:
                stats.rounds = 1
                stats.switched_to_bibfs = True
                met = bibfs_is_reachable(
                    self.graph,
                    source,
                    target,
                    stats,
                    use_kernels=params.use_kernels,
                    budget=budget,
                )
                return self._finish(stats, met, "bibfs")

            # Array-state dispatch: when both kernel switches are on and a
            # current-version snapshot is already frozen, the whole guided
            # phase (drains, contraction, hand-off) runs on the array
            # twins; otherwise — numpy absent, kernels off, or a mid-churn
            # graph whose snapshot is stale — the dict twins answer
            # identically.
            ctx = self._make_context(params, source, target, budget)
            if isinstance(ctx, ArraySearchContext):
                stats.used_push_kernel = True
                guided, contract = array_guided_search, array_community_contraction
            else:
                guided, contract = guided_search, community_contraction

            while True:
                stats.rounds += 1
                if self._should_switch(ctx, cost_model, stats.rounds, params):
                    break
                if guided(ctx, ctx.fwd, stats):
                    return self._finish(stats, True, "guided")
                outcome = contract(ctx, ctx.fwd, stats)
                if outcome is ContractionOutcome.MEET:
                    return self._finish(stats, True, "contraction")
                if outcome is ContractionOutcome.EXHAUSTED:
                    return self._finish(stats, False, "exhausted")
                if guided(ctx, ctx.rev, stats):
                    return self._finish(stats, True, "guided")
                outcome = contract(ctx, ctx.rev, stats)
                if outcome is ContractionOutcome.MEET:
                    return self._finish(stats, True, "contraction")
                if outcome is ContractionOutcome.EXHAUSTED:
                    return self._finish(stats, False, "exhausted")
                ctx.epsilon_cur = max(ctx.epsilon_cur / params.step, EPSILON_FLOOR)

            # BiBFS takes over from the frontiers (Alg. 2 lines 18-20).
            stats.switched_to_bibfs = True
            if isinstance(ctx, ArraySearchContext):
                met = array_frontier_bibfs(ctx, stats)
            else:
                met = frontier_bibfs(
                    ctx, ctx.frontier(ctx.fwd), ctx.frontier(ctx.rev), stats
                )
            return self._finish(stats, met, "bibfs")
        except BudgetExceeded as exc:
            stats.budget_exhausted = True
            stats.terminated_by = "budget"
            if exc.partial is None and ctx is not None:
                exc.partial = ctx.export_state()
            exc.query_stats = stats
            raise

    def _make_context(
        self, params, source: int, target: int, budget: Optional[Budget] = None
    ):
        """Pick the array-state context when its preconditions hold."""
        if params.use_kernels and params.use_push_kernels and kernels.kernels_enabled():
            snapshot = self.graph.csr(build=False)
            if snapshot is not None:
                return ArraySearchContext(
                    self.graph, snapshot, params, source, target, budget
                )
        return SearchContext(self.graph, params, source, target, budget)

    # ------------------------------------------------------------------
    def _should_switch(
        self,
        ctx: SearchContext,
        cost_model: CostModel,
        round_number: int,
        params,
    ) -> bool:
        if params.force_switch_round is not None:
            return round_number > params.force_switch_round
        if round_number > params.max_rounds:
            return True
        if not params.use_cost_model:
            return False
        return cost_model.should_switch(ctx)

    def _resolve_params(self):
        """Bind the ``100/m`` defaults, reusing the binding while ``m`` is
        unchanged (queries vastly outnumber updates in most workloads)."""
        m = self.graph.num_edges
        if self._resolved is None or m != self._resolved_edges:
            self._resolved = self.params.resolve(self.graph)
            self._resolved_edges = m
        return self._resolved

    def _get_cost_model(self, params) -> CostModel:
        """Keep the cost model in sync cheaply.

        The expensive part — sampling degrees and fitting the power-law
        exponent — is cached until the graph drifts by >10% of its edges;
        rebinding the model to fresh parameters (every ``100/m`` default
        moves with each update) reuses the cached fit.
        """
        m = self.graph.num_edges
        if (
            self._beta is None
            or self._beta_edges <= 0
            or abs(m - self._beta_edges) > 0.1 * self._beta_edges
        ):
            self._beta = CostModel.fit_beta(self.graph)
            self._beta_edges = max(m, 1)
            self._cost_model = None
        if self._cost_model is None or self._cost_model.params is not params:
            self._cost_model = CostModel(self.graph, params, beta=self._beta)
        return self._cost_model

    @staticmethod
    def _finish(stats: QueryStats, result: bool, reason: str):
        stats.result = result
        stats.terminated_by = reason
        return result, stats


class IFCAMethod(ReachabilityMethod):
    """IFCA behind the uniform competitor interface."""

    name = "IFCA"
    exact = True
    supports_deletions = True

    def __init__(
        self, graph: DynamicDiGraph, params: Optional[IFCAParams] = None
    ) -> None:
        super().__init__(graph)
        self.engine = IFCA(graph, params)

    def query(self, source: int, target: int) -> bool:
        return self.engine.is_reachable(source, target)

    def insert_edge(self, source: int, target: int) -> None:
        self.engine.insert_edge(source, target)

    def delete_edge(self, source: int, target: int) -> None:
        self.engine.delete_edge(source, target)
