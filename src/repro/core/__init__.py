"""IFCA core: Algorithms 1-6 of the paper.

Public entry points:

* :class:`~repro.core.ifca.IFCA` — the full framework (Alg. 2): an engine
  bound to one dynamic graph, answering exact reachability queries.
* :class:`~repro.core.params.IFCAParams` — all tunables with the paper's
  heuristic defaults (Sec. VI-A4).
* :func:`~repro.core.baseline.push_reachability` — the approximate
  push-based baseline (Alg. 1).
* :class:`~repro.core.stats.QueryStats` — per-query counters (edge
  accesses, pushes, contractions, strategy switches).

Variants for the ablation experiments are expressed through parameters:
``IFCAParams(use_cost_model=False)`` is the paper's *Contract*,
``IFCAParams(force_switch_round=0)`` degenerates to frontier BiBFS, and
:func:`push_reachability` is *Base*.
"""

from repro.core.params import IFCAParams, ResolvedParams
from repro.core.stats import QueryStats
from repro.core.ifca import IFCA, IFCAMethod
from repro.core.baseline import push_reachability, tune_epsilon_for_precision
from repro.core.bibfs import frontier_bibfs
from repro.core.cost import CostModel, CostEstimate
from repro.core.planner import QueryPlanner

__all__ = [
    "IFCA",
    "IFCAMethod",
    "IFCAParams",
    "ResolvedParams",
    "QueryStats",
    "push_reachability",
    "tune_epsilon_for_precision",
    "frontier_bibfs",
    "CostModel",
    "CostEstimate",
    "QueryPlanner",
]
