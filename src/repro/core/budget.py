"""Cooperative cancellation for in-flight searches.

The serving engine's original deadline discipline was all-or-nothing: a
blown deadline was only noticed *before* the engine started, so one slow
query still ran its full search while holding a worker and a read lock.
This module makes every search phase interruptible at safe points:

* :class:`Budget` bundles a wall-clock deadline, an edge-access ceiling,
  and an optional :class:`CancelToken`. Searches ``charge()`` edge
  accesses as they go and call :meth:`Budget.checkpoint` at *rung
  boundaries* — once per guided-drain interval, per BiBFS layer, per
  main-loop round — where their state is consistent.
* A tripped checkpoint raises :class:`BudgetExceeded`. The raiser (or the
  engine's ``query_with_stats``) attaches a :class:`PartialSearchState`
  when the interrupted search state is soundly exportable, so the
  service's degraded bounded search can resume from the explored
  frontier instead of restarting from the endpoints.

Checkpoints are cooperative: a phase that never checkpoints (a single
numpy sweep, a contraction pass) simply runs to its own internal bound
before the next checkpoint fires. This module has no intra-package
imports, so any layer (graph kernels included) may call into a budget
without creating an import cycle.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Set


class CancelToken:
    """A thread-safe one-way cancellation flag shared across queries."""

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


@dataclass
class PartialSearchState:
    """The soundly exportable remains of an interrupted search.

    Invariant: every vertex in a visited set is genuinely reachable from
    (forward) / can reach (reverse) its endpoint, and every visited vertex
    whose adjacency was not fully enumerated appears in the matching
    frontier. A bidirectional search seeded with these sets therefore
    proves exactly the same answers a fresh one would — it just starts
    closer to the goal. Contracted queries (overlay non-empty) are *not*
    exportable and hand over ``None`` instead.
    """

    fwd_visited: Set[int] = field(default_factory=set)
    rev_visited: Set[int] = field(default_factory=set)
    fwd_frontier: List[int] = field(default_factory=list)
    rev_frontier: List[int] = field(default_factory=list)


class BudgetExceeded(Exception):
    """Raised at a checkpoint once a budget dimension is exhausted.

    ``reason`` is ``"deadline" | "edge-budget" | "cancelled"``;
    ``partial`` carries the interrupted search state when the raiser could
    export it soundly (``None`` otherwise).
    """

    def __init__(
        self,
        reason: str,
        spent: int = 0,
        partial: Optional[PartialSearchState] = None,
    ) -> None:
        super().__init__(f"search budget exceeded ({reason}, {spent} edge accesses)")
        self.reason = reason
        self.spent = spent
        self.partial = partial


class Budget:
    """A per-query spend tracker: deadline + edge ceiling + cancel token.

    All limits are optional; a limit left ``None`` is never checked, so a
    token-only budget costs one ``Event.is_set()`` per checkpoint and a
    deadline-free budget never calls the clock.
    """

    __slots__ = ("deadline", "edge_ceiling", "token", "spent")

    def __init__(
        self,
        deadline: Optional[float] = None,
        edge_ceiling: Optional[int] = None,
        token: Optional[CancelToken] = None,
    ) -> None:
        #: Absolute ``time.perf_counter()`` timestamp, or ``None``.
        self.deadline = deadline
        self.edge_ceiling = edge_ceiling
        self.token = token
        self.spent = 0

    @classmethod
    def from_timeout(
        cls,
        timeout_s: Optional[float],
        edge_ceiling: Optional[int] = None,
        token: Optional[CancelToken] = None,
    ) -> "Budget":
        deadline = (
            time.perf_counter() + timeout_s if timeout_s is not None else None
        )
        return cls(deadline=deadline, edge_ceiling=edge_ceiling, token=token)

    def charge(self, edges: int) -> None:
        """Record ``edges`` accesses against the ceiling (no check)."""
        self.spent += edges

    def reason(self) -> Optional[str]:
        """The first exhausted dimension, or ``None`` while within budget."""
        if self.token is not None and self.token.cancelled:
            return "cancelled"
        if self.edge_ceiling is not None and self.spent > self.edge_ceiling:
            return "edge-budget"
        if self.deadline is not None and time.perf_counter() > self.deadline:
            return "deadline"
        return None

    def checkpoint(self, edges: int = 0) -> None:
        """Charge ``edges``, then raise :class:`BudgetExceeded` if spent."""
        if edges:
            self.spent += edges
        why = self.reason()
        if why is not None:
            raise BudgetExceeded(why, self.spent)
