"""Cost-based strategy selection — Algorithm 6 and the Sec. V-D cost model.

Estimated cost of each strategy = (projected number of basic operations)
x (relative per-operation execution time). Guided-search operations are
``lambda`` times slower than BiBFS operations (``lambda`` is measured by
:mod:`repro.experiments.lambda_calibration`; the paper's Sec. V-D4).

Number of operations:

* continuing guided search — push up to the next contraction costs
  ``1/(alpha*eps_span) - 1/(alpha*eps_cur)`` operations and each later
  contraction-to-contraction span ``1/(alpha*eps_span) -
  1/(alpha*eps_init)``, where ``eps_span`` is the paper's ``eps_pre``
  except in the degenerate ``eps_init <= eps_pre * step`` corner (see
  :meth:`CostModel._span_epsilon`); the projected number of remaining
  contractions is ``N = n_f/k_f + n_r/k_r`` with ``k`` bounded through the
  power-law PPR assumption (Eqs. 1-4); backward push carries an extra
  ``d_avg`` factor (Lem. 1);
* switching to BiBFS — ``|V'| + |E'|`` (Lem. 2) with ``|V'|`` the
  unexplored vertices of the reduced graph and ``|E'|`` tracked through the
  ``intEdges`` counters (``m'`` minus the internal edges absorbed so far).

We use the paper's *upper* bound for ``k`` (their experimental choice),
which biases the model toward continuing the guided search.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.community.powerlaw import power_law_coefficient, ppr_power_law_constants
from repro.core.params import PUSH_BACKWARD, ResolvedParams
from repro.core.state import SearchContext
from repro.graph.digraph import DynamicDiGraph

#: Degrees sampled when fitting beta on large graphs.
_BETA_SAMPLE_SIZE = 2048


@dataclass(frozen=True)
class CostEstimate:
    """The two sides of the Alg. 6 comparison, for introspection."""

    cost_guided: float
    cost_bibfs: float
    k_forward: float
    k_reverse: float
    projected_contractions: float

    @property
    def switch(self) -> bool:
        return self.cost_bibfs < self.cost_guided


class CostModel:
    """Per-graph cost model state: the fitted ``beta`` and ``lambda``.

    ``beta`` is fitted once per graph snapshot binding (cheap, sampled) and
    can be pinned via ``params.beta``. The model is re-created by the IFCA
    engine whenever the graph changes enough to matter (on update, the
    engine marks it stale).
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        params: ResolvedParams,
        seed: Optional[int] = 0,
        beta: Optional[float] = None,
    ) -> None:
        self.params = params
        self.d_avg = max(graph.average_degree, 1e-9)
        if params.beta is not None:
            self.beta = params.beta
        elif beta is not None:
            # A pre-fitted exponent (the engine caches the expensive degree
            # sampling across updates and hands it back in).
            self.beta = beta
        else:
            self.beta = self.fit_beta(graph, seed)
        # Round-1 decisions depend only on (n, m, epsilon_cur); nearly every
        # query asks exactly that, so memoize it.
        self._initial_decisions: dict = {}

    @classmethod
    def fit_beta(cls, graph: DynamicDiGraph, seed: Optional[int] = 0) -> float:
        """Fit the PPR power-law exponent from sampled degrees (Sec. V-D3)."""
        degrees = cls._sample_degrees(graph, seed)
        beta, _ = ppr_power_law_constants(degrees, max(graph.num_vertices, 1))
        return beta

    @staticmethod
    def _sample_degrees(graph: DynamicDiGraph, seed: Optional[int]) -> list:
        vertices = list(graph.vertices())
        if len(vertices) > _BETA_SAMPLE_SIZE:
            rng = random.Random(seed)
            vertices = rng.sample(vertices, _BETA_SAMPLE_SIZE)
        return [graph.degree(v) for v in vertices]

    # ------------------------------------------------------------------
    def k_upper_bound(self, n_remaining: int) -> float:
        """Eq. 2: ``k <= (c / (alpha (1-alpha) eps_pre))^(1/beta)``."""
        p = self.params
        c = power_law_coefficient(max(n_remaining, 1), self.beta)
        base = c / (p.alpha * (1.0 - p.alpha) * p.epsilon_pre)
        if base <= 1.0:
            return 1.0
        k = base ** (1.0 / self.beta)
        return min(max(k, 1.0), float(max(n_remaining, 1)))

    def k_lower_bound(self, n_remaining: int) -> float:
        """Eq. 4: ``k >= (c / eps_pre)^(1/beta) - 1``."""
        p = self.params
        c = power_law_coefficient(max(n_remaining, 1), self.beta)
        base = c / p.epsilon_pre
        if base <= 1.0:
            return 1.0
        k = base ** (1.0 / self.beta) - 1.0
        return min(max(k, 1.0), float(max(n_remaining, 1)))

    def _span_epsilon(self) -> float:
        """The effective threshold a contraction span is priced at.

        The paper prices a span at ``epsilon_pre``. That degenerates to a
        zero-cost span when ``epsilon_init`` sits at (or below) the first
        ladder notch above ``epsilon_pre`` — the model would then believe
        guided search is free and never switch. In that corner we price
        the span one ladder notch lower (``epsilon_init / step``), which
        is where Alg. 4's strict ``epsilon_cur < epsilon_pre`` trigger
        actually fires; everywhere else the paper's formula is kept.
        """
        p = self.params
        return min(p.epsilon_pre, p.epsilon_init / p.step)

    # ------------------------------------------------------------------
    def evaluate(self, ctx: SearchContext) -> CostEstimate:
        """Alg. 6: the projected costs of the two strategies right now.

        ``ctx`` may be either context flavour (dict
        :class:`~repro.core.state.SearchContext` or the array-state twin);
        the model only reads the ``progress()`` protocol plus the reduced
        size counters.
        """
        p = self.params
        explored_f, explored_r, int_f, int_r, _ = ctx.progress()
        # n_reduced already excludes contracted vertices; subtracting the
        # currently explored (not yet contracted) ones gives the paper's
        # "n minus the number of explored vertices".
        n_f = max(ctx.n_reduced - explored_f, 1)
        n_r = max(ctx.n_reduced - explored_r, 1)
        k_f = self.k_upper_bound(n_f)
        k_r = self.k_upper_bound(n_r)
        projected_n = n_f / k_f + n_r / k_r

        inv = 1.0 / p.alpha
        span_eps = self._span_epsilon()
        ops_to_next = max(inv / span_eps - inv / max(ctx.epsilon_cur, 1e-300), 0.0)
        ops_per_span = max(inv / span_eps - inv / p.epsilon_init, 0.0)
        ops_guided = ops_to_next + projected_n * ops_per_span
        if p.push_style == PUSH_BACKWARD:
            ops_guided *= self.d_avg
        cost_guided = 2.0 * p.lambda_ratio * ops_guided

        explored = explored_f + explored_r
        v_prime = max(ctx.n_reduced - explored, 0)
        e_prime = max(ctx.m_reduced - int_f - int_r, 0)
        cost_bibfs = float(v_prime + e_prime)

        return CostEstimate(
            cost_guided=cost_guided,
            cost_bibfs=cost_bibfs,
            k_forward=k_f,
            k_reverse=k_r,
            projected_contractions=projected_n,
        )

    def should_switch(self, ctx: SearchContext) -> bool:
        """Whether Alg. 2 should break its loop and hand over to BiBFS."""
        if not ctx.progress()[4]:
            return self.initial_switch_decision(
                ctx.n_reduced, ctx.m_reduced, ctx.epsilon_cur
            )
        return self.evaluate(ctx).switch

    def initial_switch_decision(self, n: int, m: int, epsilon_cur: float) -> bool:
        """The round-1 Alg. 6 decision, which depends only on (n, m,
        epsilon_cur). Memoized; the IFCA engine uses it both inside the
        main loop and as a fast path that skips search-state setup
        entirely when the very first decision is already "switch"."""
        key = (n, m, epsilon_cur)
        cached = self._initial_decisions.get(key)
        if cached is None:
            p = self.params
            n_eff = max(n, 1)
            k = self.k_upper_bound(n_eff)
            projected_n = 2.0 * n_eff / k
            inv = 1.0 / p.alpha
            span_eps = self._span_epsilon()
            ops_to_next = max(
                inv / span_eps - inv / max(epsilon_cur, 1e-300), 0.0
            )
            ops_per_span = max(inv / span_eps - inv / p.epsilon_init, 0.0)
            ops_guided = ops_to_next + projected_n * ops_per_span
            if p.push_style == PUSH_BACKWARD:
                ops_guided *= self.d_avg
            cached = float(n + m) < 2.0 * p.lambda_ratio * ops_guided
            self._initial_decisions[key] = cached
        return cached
