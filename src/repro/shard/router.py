"""Scatter–gather query routing over a shard fleet.

The router owns one :class:`~repro.shard.partition.ShardPlan`, one
published shared-memory segment per shard, and one spawned worker per
shard. For a batch of (source, target) pairs it resolves, in order:

1. **same SCC** → ``True`` (Tarjan ids from the partition);
2. **class summaries** → exact ``True``/``False`` for every pair that
   touches or could pass through a split class (see
   :mod:`repro.shard.partition`);
3. **quotient closure** → ``False`` when ``shard(t)`` is unreachable
   from ``shard(s)`` in the shard DAG;
4. **intra-shard** (both endpoints in one closed segment) → one
   ≤64-lane bit-parallel wave on that shard's worker, verdicts final;
5. **cross-shard** → scatter–gather: lanes are packed 64 to a group,
   each shard's worker computes the bit-label closure of the lanes'
   entry vertices (:func:`~repro.graph.bitsearch.csr_bit_reach`), and
   the router joins returned boundary masks across shards along the
   condensation DAG's cross edges, pruning lanes per shard through the
   quotient closure. Monotone per-shard ``sent`` masks make the fixpoint
   terminate; draining without reaching a lane's target proves its
   negative (closures are exhaustive).

**Containment and respawn.** Any worker failure — died process, pipe
error, call timeout, stale version, expired budget — marks that worker
dead and reroutes the affected pairs to the caller as *unresolved*; the
serving engine then answers them on its own single-process path. A dead
worker never wedges a batch. The fleet then *self-heals*: a dead
worker's shared-memory segments stay published, so
:meth:`ShardRouter.respawn_dead` spawns a replacement process that
re-attaches the same :class:`~repro.shard.partition.ShardPlan` — no
repartition, no republish — and probes it through the mapping before
trusting it. ``execute_batch`` triggers the respawn automatically (rate
limited by ``respawn_cooldown_s``, capped per slot by
``max_worker_respawns``), so the degraded window is one batch, not one
epoch; :meth:`refresh` remains the heavier fallback that respawns the
fleet against a *new* plan.

**Swap protocol.** On a graph epoch change the engine calls
:meth:`refresh`: the router repartitions, publishes version-stamped
segments, and either swaps workers in place (same worker count, all
alive) or respawns the fleet; old segments are unlinked after the swap
acknowledges.

**Pipelined execution (default).** Workers are a *pool*, not
shard-bound processes: every worker attaches every shard's segment
(shared physical pages — the cost is page-table entries), so any wave
or closure step can run on any worker. With ``pipeline=True`` a batch's
intra waves and cross-group closure steps all become tagged jobs on one
:class:`~repro.shard.pipeline.PipelineRun` reactor, which multiplexes
all worker pipes with :func:`multiprocessing.connection.wait`, keeps up
to ``inflight_window`` requests in flight per worker, and advances each
cross-shard fixpoint the moment its own replies land (the monotone sent
masks make the fixpoint confluent, so no round barrier is needed). With
``pipeline=False`` the legacy round-synchronous path runs — still
improved: :meth:`_scatter` gathers with ``connection.wait`` instead of
reading replies in posted order, so a slow shard no longer delays
reading faster shards' replies. Scalar point queries ride the same
machinery via :meth:`route_scalar`: the O(1) ladder answers lock-free;
a searchable miss becomes a 1-lane run if the fleet is idle, and backs
off to the caller when a batch holds the route lock.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.graph.digraph import DynamicDiGraph
from repro.graph.snapshot import CSRSnapshot
from repro.shard.memory import SegmentHandle, publish_snapshot, segment_name
from repro.shard.partition import ShardPlan, partition_graph
from repro.shard.pipeline import PipelineRun
from repro.shard.worker import shard_worker_main

#: Lanes per cross-shard scatter–gather group (one uint64 word).
GROUP_LANES = 64

Pair = Tuple[int, int]
#: A resolved routed verdict: (answer, how).
Verdict = Tuple[bool, str]

#: Shared verdict tuples — the rule ladder emits thousands per batch.
_VERDICT_SCC: Verdict = (True, "scc")
_VERDICT_CLASS: Verdict = (True, "class")
_VERDICT_CLASS_NEG: Verdict = (False, "class-neg")
_VERDICT_QUOTIENT: Verdict = (False, "quotient")
_VERDICT_DEG: Verdict = (False, "deg")
_VERDICT_LABEL_POS: Verdict = (True, "label-pos")
_VERDICT_LABEL_NEG: Verdict = (False, "label-neg")


def classify_pair(plan: ShardPlan, s: int, t: int):
    """Run one pair through the O(1) rule ladder.

    Returns ``("resolved", (answer, how))`` when a rule answers,
    ``("intra", shard)`` / ``("cross", (ks, kt))`` when a search is
    needed, or ``("unknown", None)`` when an endpoint is not in the
    plan. The batch ladder in :meth:`ShardRouter.execute_batch` is the
    same logic unrolled for interpreter speed over thousands of pairs;
    this per-pair form serves the scalar path and workload probes.
    """
    ks = plan.shard_of.get(s)
    kt = plan.shard_of.get(t)
    if ks is None or kt is None:
        return ("unknown", None)
    if plan.scc_of[s] == plan.scc_of[t]:
        return ("resolved", _VERDICT_SCC)
    for cid, reaches in plan.reaches_class.items():
        if s in reaches and t in plan.reached_from_class[cid]:
            return ("resolved", _VERDICT_CLASS)
    if (
        plan.shards[ks].scc_class is not None
        or plan.shards[kt].scc_class is not None
    ):
        return ("resolved", _VERDICT_CLASS_NEG)
    if kt not in plan.quotient_reach[ks]:
        return ("resolved", _VERDICT_QUOTIENT)
    if s not in plan.live_out[ks] or t not in plan.live_in[kt]:
        return ("resolved", _VERDICT_DEG)
    if ks == kt:
        return ("intra", ks)
    return ("cross", (ks, kt))


class WorkerDied(Exception):
    """A shard worker failed mid-call (process death, timeout, error)."""


class _Stale(Exception):
    """Worker answered for a different graph epoch."""


class _OverBudget(Exception):
    """Worker gave up under its time/edge budget."""


class ShardWorkerHandle:
    """The primary's handle on one spawned shard worker."""

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.alive = True

    def post(self, msg: Tuple) -> None:
        """Send one message without waiting — pair with :meth:`wait`."""
        if not self.alive:
            raise WorkerDied("worker already marked dead")
        try:
            self.conn.send(msg)
        except (OSError, BrokenPipeError) as exc:
            self.kill()
            raise WorkerDied(f"worker pipe failed: {exc!r}") from exc

    def wait(self, timeout_s: float) -> Tuple:
        """Collect the reply to the last :meth:`post`."""
        try:
            if not self.conn.poll(timeout_s):
                raise WorkerDied(f"worker call timed out after {timeout_s}s")
            reply = self.conn.recv()
        except WorkerDied:
            self.kill()
            raise
        except (EOFError, OSError, BrokenPipeError) as exc:
            self.kill()
            raise WorkerDied(f"worker pipe failed: {exc!r}") from exc
        kind = reply[0]
        if kind == "stale":
            raise _Stale(str(reply[1]))
        if kind == "budget":
            raise _OverBudget(str(reply[1]))
        if kind == "error":
            raise WorkerDied(f"worker error: {reply[1]}")
        return reply

    def call(self, msg: Tuple, timeout_s: float) -> Tuple:
        self.post(msg)
        return self.wait(timeout_s)

    def kill(self) -> None:
        """Hard-stop the worker and reap it — safe to call mid-wave.

        SIGKILL rather than SIGTERM: a worker wedged under SIGSTOP (or
        spinning with signals blocked) ignores a terminate request, and
        a respawn must not race a half-dead predecessor. The join reaps
        the zombie so a respawned fleet never accumulates defunct
        processes, and the process exits without running cleanup — its
        segment mappings just vanish with the address space, which is
        exactly why the router (not the worker) owns unlinking.
        """
        self.alive = False
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)

    def stop(self, timeout_s: float = 2.0) -> None:
        if self.alive:
            try:
                self.conn.send(("stop",))
                self.conn.poll(timeout_s)
            except (OSError, BrokenPipeError):
                pass
        self.kill()


#: Back-compat alias (pre-respawn name).
_Worker = ShardWorkerHandle


class ShardRouter:
    """Partition + publish + spawn, then route batches (see module doc)."""

    def __init__(
        self,
        graph: DynamicDiGraph,
        num_shards: int,
        *,
        num_workers: Optional[int] = None,
        pipeline: bool = True,
        inflight_window: int = 4,
        call_timeout_s: float = 30.0,
        auto_respawn: bool = True,
        max_worker_respawns: int = 3,
        respawn_cooldown_s: float = 0.05,
    ) -> None:
        if num_shards < 2:
            raise ValueError("ShardRouter needs num_shards >= 2")
        if num_workers is not None and num_workers < 1:
            raise ValueError("ShardRouter needs num_workers >= 1")
        self.requested_shards = num_shards
        self.requested_workers = num_workers
        self.pipeline = pipeline
        self.inflight_window = max(1, inflight_window)
        self.call_timeout_s = call_timeout_s
        self.auto_respawn = auto_respawn
        self.max_worker_respawns = max_worker_respawns
        self.respawn_cooldown_s = respawn_cooldown_s
        self.counters: Dict[str, int] = {}
        self._ctx = multiprocessing.get_context("spawn")
        self._plan: Optional[ShardPlan] = None
        self._segments: List[SegmentHandle] = []
        self._workers: List[ShardWorkerHandle] = []
        self._respawn_attempts: List[int] = []
        self._last_respawn_at = 0.0
        self._closed = False
        # Serializes every path that touches worker pipes. Batches take
        # it blocking; scalar riders take it non-blocking and fall back
        # to the caller instead of convoying behind a batch.
        self._route_lock = threading.Lock()
        self._deploy(graph)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return self._plan.version if self._plan is not None else -1

    @property
    def num_shards(self) -> int:
        return self._plan.num_shards if self._plan is not None else 0

    @property
    def healthy(self) -> bool:
        """All workers alive (a degraded router still routes what it can)."""
        return bool(self._workers) and all(w.alive for w in self._workers)

    def _incr(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def _publish(self, plan: ShardPlan) -> List[SegmentHandle]:
        handles = []
        for info, sub in zip(plan.shards, plan.subgraphs):
            csr = CSRSnapshot.freeze(sub)
            handles.append(
                publish_snapshot(csr, segment_name(info.index, plan.version))
            )
        return handles

    def _fleet_spec(
        self, plan: ShardPlan, handles: List[SegmentHandle]
    ) -> Dict[str, object]:
        """The spec every worker attaches: all shards of one epoch."""
        return {
            "version": plan.version,
            "shards": [
                {
                    "name": handles[index].name,
                    "manifest": handles[index].manifest,
                    "boundary_out": plan.boundary_out.get(index, []),
                }
                for index in range(plan.num_shards)
            ],
        }

    def _worker_count(self, plan: ShardPlan) -> int:
        return (
            self.requested_workers
            if self.requested_workers is not None
            else plan.num_shards
        )

    def _deploy(self, graph: DynamicDiGraph) -> None:
        plan = partition_graph(graph, self.requested_shards)
        if not plan.shards:
            raise ValueError("cannot shard an empty graph")
        self._deploy_from(plan)

    def refresh(self, graph: DynamicDiGraph) -> None:
        """Re-anchor the fleet at the graph's current version.

        Swaps segments in place when the new partition keeps the shard
        count and every worker is alive; otherwise tears down and
        respawns. Either way the old version-stamped segments are
        unlinked once no worker needs them.
        """
        if self._closed:
            raise RuntimeError("router is closed")
        if self._plan is not None and self._plan.version == graph.version:
            return
        plan = partition_graph(graph, self.requested_shards)
        if not plan.shards:
            raise ValueError("cannot shard an empty graph")
        in_place = (
            self._plan is not None
            and self._worker_count(plan) == len(self._workers)
            and all(w.alive for w in self._workers)
        )
        if not in_place:
            self._teardown()
            self._deploy_from(plan)
            return
        handles = self._publish(plan)
        old_segments = self._segments
        spec = self._fleet_spec(plan, handles)
        try:
            for worker in self._workers:
                worker.call(("swap", spec), self.call_timeout_s)
        except (WorkerDied, _Stale, _OverBudget):
            # A failed swap leaves a mixed fleet: fall back to a full
            # respawn against the new plan.
            for handle in handles:
                handle.close()
            self._teardown()
            self._deploy_from(plan)
            for handle in old_segments:
                handle.close()
            return
        self._plan = plan
        self._segments = handles
        for handle in old_segments:
            handle.close()
        self._incr("swaps")

    def _spawn(self, spec: Dict[str, object], index: int) -> ShardWorkerHandle:
        parent, child = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(child, spec),
            daemon=True,
            name=f"ifca-worker-{index}",
        )
        process.start()
        child.close()
        return ShardWorkerHandle(process, parent)

    def _deploy_from(self, plan: ShardPlan) -> None:
        handles = self._publish(plan)
        spec = self._fleet_spec(plan, handles)
        workers: List[ShardWorkerHandle] = []
        try:
            for index in range(self._worker_count(plan)):
                workers.append(self._spawn(spec, index))
            for worker in workers:
                worker.call(("ping",), self.call_timeout_s)
        except Exception:
            for worker in workers:
                worker.kill()
            for handle in handles:
                handle.close()
            raise
        self._plan, self._segments, self._workers = plan, handles, workers
        self._respawn_attempts = [0] * len(workers)
        self._incr("deploys")

    def respawn_dead(self, *, probe: bool = True) -> int:
        """Replace dead workers against the *current* plan (no repartition).

        The dead worker's segments are still published (workers never
        own unlinking), so the replacement process re-attaches the same
        version-stamped segment and picks up exactly where its
        predecessor stood. With ``probe`` (the default) each replacement
        must answer a ``("probe", version)`` — a read through the
        re-attached CSR mapping — before it rejoins the fleet, so
        :attr:`healthy` flips back only after a successful probe wave.
        Per-slot attempts are capped at ``max_worker_respawns`` per
        deployed plan (a shard that keeps dying is a poison shard; give
        it back to the single-process path rather than fork-bombing).
        Returns the number of workers respawned.
        """
        if self._closed or self._plan is None:
            return 0
        self._sweep_dead()
        respawned = 0
        spec = self._fleet_spec(self._plan, self._segments)
        for index, worker in enumerate(self._workers):
            if worker.alive:
                continue
            if self._respawn_attempts[index] >= self.max_worker_respawns:
                continue
            self._respawn_attempts[index] += 1
            replacement: Optional[ShardWorkerHandle] = None
            try:
                replacement = self._spawn(spec, index)
                if probe:
                    replacement.call(
                        ("probe", self._plan.version), self.call_timeout_s
                    )
            except Exception:
                if replacement is not None:
                    replacement.kill()
                self._incr("respawn_failures")
                continue
            self._workers[index] = replacement
            respawned += 1
            self._incr("worker_respawns")
        if respawned:
            self._last_respawn_at = time.monotonic()
        return respawned

    def warm_fleet(self) -> int:
        """Fault every (worker, shard) wave path once, off the timed path.

        A fresh worker pays one-time costs on its first wave over a
        segment — the shared CSR pages fault in and the bit-BFS kernels
        run their first-call setup — and that cost otherwise lands
        inside whichever serving batch happens to reach the cold worker
        first (tens of milliseconds on a fresh fleet, an order of
        magnitude over a warm wave). Deployments that care about
        first-batch latency (and the serving benchmark, whose contract
        is to time steady state) call this once after deploy: each
        alive worker runs one tiny wave per shard. Best-effort — a
        dead, stale, or over-budget worker just stops warming; serving
        correctness never depends on warmth. Returns the number of
        (worker, shard) paths warmed.
        """
        plan = self._plan
        if plan is None:
            return 0
        probes: List[Tuple[int, List[Tuple[int, int]]]] = []
        for shard, sub in enumerate(plan.subgraphs):
            verts: List[int] = []
            for v in sub.vertices():
                verts.append(v)
                if len(verts) == 2:
                    break
            if not verts:
                continue
            probes.append((shard, [(verts[0], verts[-1])]))
        warmed = 0
        with self._route_lock:
            for worker in self._workers:
                if not worker.alive:
                    continue
                for shard, pairs in probes:
                    try:
                        worker.call(
                            (
                                "wave",
                                plan.version,
                                shard,
                                pairs,
                                "forward",
                                self.call_timeout_s,
                                None,
                            ),
                            self.call_timeout_s,
                        )
                    except (WorkerDied, _Stale, _OverBudget):
                        break
                    warmed += 1
        return warmed

    def _sweep_dead(self) -> None:
        """Notice workers that died without a call failing on them.

        A worker SIGKILLed between batches (or one whose shard no batch
        happened to touch) would otherwise sit as a live-looking handle
        until the first routed pair hits its broken pipe. ``is_alive``
        is one non-blocking ``waitpid`` per worker — cheap enough to
        run before every respawn decision.
        """
        for worker in self._workers:
            if worker.alive and not worker.process.is_alive():
                worker.kill()
                self._incr("worker_failures")

    def _maybe_respawn(self) -> None:
        """The ``execute_batch`` self-heal hook (cooldown-gated)."""
        if not self.auto_respawn or not self._workers:
            return
        now = time.monotonic()
        if now - self._last_respawn_at < self.respawn_cooldown_s:
            return
        self._sweep_dead()
        if self.healthy:
            return
        self._last_respawn_at = now
        self.respawn_dead()

    def _teardown(self) -> None:
        for worker in self._workers:
            worker.stop()
        self._workers = []
        for handle in self._segments:
            handle.close()
        self._segments = []

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._teardown()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def execute_batch(
        self,
        pairs: Sequence[Pair],
        *,
        deadline: Optional[float] = None,
        edge_ceiling: Optional[int] = None,
        label_filter=None,
    ) -> Tuple[Dict[Pair, Verdict], List[Pair]]:
        """Route one batch; returns ``(resolved, unresolved)``.

        ``resolved`` maps each answered pair to ``(answer, how)`` with
        ``how`` one of ``"scc" | "class" | "class-neg" | "quotient" |
        "deg" | "label-pos" | "label-neg" | "wave" | "cross"``.
        ``unresolved`` pairs (worker death, budget, stale, endpoints
        unknown to the plan) are the caller's to answer locally.
        ``deadline`` is an absolute ``time.perf_counter()`` stamp
        forwarded to workers as a remaining-time budget. ``label_filter``
        (the service's DL/BL tier, see
        :mod:`repro.graph.labels`) screens every pair that survived the
        O(1) rule ladder in one vectorized call before any worker round
        trip is paid.
        """
        if self._closed or self._plan is None:
            return {}, list(pairs)
        with self._route_lock:
            return self._execute_batch_locked(
                pairs, deadline, edge_ceiling, label_filter
            )

    def _execute_batch_locked(
        self,
        pairs: Sequence[Pair],
        deadline: Optional[float],
        edge_ceiling: Optional[int],
        label_filter,
    ) -> Tuple[Dict[Pair, Verdict], List[Pair]]:
        self._maybe_respawn()
        plan = self._plan
        resolved: Dict[Pair, Verdict] = {}
        unresolved: List[Pair] = []
        searchable: List[Tuple[Pair, int, int]] = []
        intra: Dict[int, List[Pair]] = {}
        cross: List[Pair] = []

        # The ladder runs per pair over batches of thousands, so it is
        # written for the interpreter: plan lookups bound to locals,
        # verdict tuples shared, rule hits tallied with plain ints.
        shard_of_get = plan.shard_of.get
        scc_of = plan.scc_of
        classes = [
            (reaches, plan.reached_from_class[cid])
            for cid, reaches in plan.reaches_class.items()
        ]
        is_class_shard = [
            info.scc_class is not None for info in plan.shards
        ]
        quotient_reach = plan.quotient_reach
        live_out, live_in = plan.live_out, plan.live_in
        n_scc = n_class = n_class_neg = n_quotient = n_deg = 0

        for pair in pairs:
            s, t = pair
            ks = shard_of_get(s)
            kt = shard_of_get(t)
            if ks is None or kt is None:
                unresolved.append(pair)
                continue
            if scc_of[s] == scc_of[t]:
                resolved[pair] = _VERDICT_SCC
                n_scc += 1
                continue
            for reaches, reached_from in classes:
                if s in reaches and t in reached_from:
                    resolved[pair] = _VERDICT_CLASS
                    n_class += 1
                    break
            else:
                # An endpoint inside a split class with no through-class
                # verdict above is an exact negative: every path from
                # (to) a class member passes the class itself.
                if is_class_shard[ks] or is_class_shard[kt]:
                    resolved[pair] = _VERDICT_CLASS_NEG
                    n_class_neg += 1
                    continue
                if kt not in quotient_reach[ks]:
                    resolved[pair] = _VERDICT_QUOTIENT
                    n_quotient += 1
                    continue
                # Degree liveness: a source with no routed out-edge (or
                # a target with no routed in-edge) in its shard cannot
                # be on any path the fleet could find — an exact
                # negative for two set probes. On sparse peripheries
                # this keeps most of the batch off the wire entirely.
                if s not in live_out[ks] or t not in live_in[kt]:
                    resolved[pair] = _VERDICT_DEG
                    n_deg += 1
                    continue
                searchable.append((pair, ks, kt))

        if searchable and label_filter is not None:
            verdicts = label_filter([entry[0] for entry in searchable])
            if verdicts is not None:
                survivors: List[Tuple[Pair, int, int]] = []
                n_label_pos = n_label_neg = 0
                for entry, verdict in zip(searchable, verdicts):
                    if verdict > 0:
                        resolved[entry[0]] = _VERDICT_LABEL_POS
                        n_label_pos += 1
                    elif verdict < 0:
                        resolved[entry[0]] = _VERDICT_LABEL_NEG
                        n_label_neg += 1
                    else:
                        survivors.append(entry)
                searchable = survivors
                if n_label_pos:
                    self._incr("route_label_pos", n_label_pos)
                if n_label_neg:
                    self._incr("route_label_neg", n_label_neg)
        for pair, ks, kt in searchable:
            if ks == kt:
                intra.setdefault(ks, []).append(pair)
            else:
                cross.append(pair)

        self._incr("route_pairs", len(pairs))
        for how, n in (
            ("scc", n_scc),
            ("class", n_class),
            ("class-neg", n_class_neg),
            ("quotient", n_quotient),
            ("deg", n_deg),
        ):
            if n:
                self._incr(f"route_{how}", n)

        if self.pipeline:
            if intra or cross:
                # Every intra 64-lane chunk and every cross-group closure
                # step becomes a tagged job on one reactor; any job can
                # run on any worker (all segments attached), so a busy
                # shard's waves spill into idle workers and many group
                # fixpoints advance concurrently.
                run = PipelineRun(
                    self, deadline=deadline, edge_ceiling=edge_ceiling
                )
                for shard, plist in intra.items():
                    for start in range(0, len(plist), GROUP_LANES):
                        run.add_intra(shard, plist[start : start + GROUP_LANES])
                for start in range(0, len(cross), GROUP_LANES):
                    run.add_group(cross[start : start + GROUP_LANES])
                run_resolved, run_unresolved = run.run()
                resolved.update(run_resolved)
                unresolved.extend(run_unresolved)
                self._incr("route_pipeline_batches")
        else:
            if intra:
                # One batched call per shard — the worker chunks into
                # 64-lane waves itself, so a shard's whole intra load
                # costs one IPC round trip — posted to every shard
                # before the first reply is collected.
                plan_version = plan.version
                replies, failures = self._scatter(
                    {
                        shard: (
                            "wave",
                            plan_version,
                            shard,
                            plist,
                            "forward",
                            self._time_left(deadline),
                            edge_ceiling,
                        )
                        for shard, plist in intra.items()
                    }
                )
                for shard, exc in failures.items():
                    self._note_failure(exc)
                    unresolved.extend(intra[shard])
                for shard, reply in replies.items():
                    _ok, answers, stats = reply
                    self._incr("worker_edge_accesses", int(stats[2]))
                    for pair, answer in zip(intra[shard], answers):
                        resolved[pair] = (answer, "wave")
                    self._incr("route_waves", int(stats[4]))
                    self._incr("route_wave_pairs", len(intra[shard]))

            for start in range(0, len(cross), GROUP_LANES):
                group = cross[start : start + GROUP_LANES]
                try:
                    verdicts = self._cross_group(group, deadline, edge_ceiling)
                except (WorkerDied, _Stale, _OverBudget) as exc:
                    self._note_failure(exc)
                    unresolved.extend(group)
                    continue
                resolved.update(verdicts)
                self._incr("route_cross_groups")
                self._incr("route_cross_pairs", len(group))

        if unresolved:
            self._incr("route_unresolved", len(unresolved))
        return resolved, unresolved

    def route_scalar(
        self,
        s: int,
        t: int,
        *,
        deadline: Optional[float] = None,
        edge_ceiling: Optional[int] = None,
    ) -> Tuple[Optional[Verdict], str]:
        """Route one point query; returns ``(verdict_or_None, status)``.

        The O(1) rule ladder runs lock-free (the plan is immutable per
        epoch), so a rule hit costs no coordination at all. A searchable
        pair becomes a 1-lane rider on the pipelined scheduler — but
        only if the route lock is free: a scalar query never queues
        behind a batch (status ``"busy"``), it falls back to the
        caller's local engine instead. Status is one of ``"rule"``,
        ``"search"``, ``"busy"``, ``"miss"``.
        """
        if self._closed or self._plan is None:
            return None, "miss"
        kind, info = classify_pair(self._plan, s, t)
        if kind == "resolved":
            self._incr("route_scalar_rules")
            return info, "rule"
        if kind == "unknown":
            return None, "miss"
        if not self._route_lock.acquire(blocking=False):
            self._incr("route_scalar_busy")
            return None, "busy"
        try:
            self._maybe_respawn()
            if not any(w.alive for w in self._workers):
                self._incr("route_scalar_misses")
                return None, "miss"
            run = PipelineRun(
                self, deadline=deadline, edge_ceiling=edge_ceiling
            )
            pair = (s, t)
            if kind == "intra":
                run.add_intra(info, [pair])
            else:
                run.add_group([pair])
            resolved, _unresolved = run.run()
            verdict = resolved.get(pair)
            if verdict is None:
                self._incr("route_scalar_misses")
                return None, "miss"
            self._incr("route_scalar_waves")
            return verdict, "search"
        finally:
            self._route_lock.release()

    def _note_failure(self, exc: Exception) -> None:
        if isinstance(exc, WorkerDied):
            self._incr("worker_failures")
        elif isinstance(exc, _OverBudget):
            self._incr("route_budget_exceeded")
        else:
            self._incr("route_stale")

    def _time_left(self, deadline: Optional[float]) -> Optional[float]:
        if deadline is None:
            return None
        return max(1e-3, deadline - time.perf_counter())

    def _scatter(
        self, msgs: Dict[int, Tuple]
    ) -> Tuple[Dict[int, Tuple], Dict[int, Exception]]:
        """Post one message per shard, then gather replies as they land.

        All messages are in flight before the first reply is read, and
        the gather multiplexes every posted pipe with
        ``connection.wait`` — replies are consumed in *arrival* order,
        so one slow shard no longer blocks reading the fast shards'
        finished replies (the old gather waited in posted order). Each
        worker serves its pipe FIFO, so per-worker replies still match
        posts positionally. Workers that answer nothing within
        ``call_timeout_s`` of the gather's start are convicted and
        killed (the SIGSTOP catch). Returns ``(replies, failures)`` per
        shard.
        """
        replies: Dict[int, Tuple] = {}
        failures: Dict[int, Exception] = {}
        fifo: Dict[int, Deque[int]] = {}
        for shard, msg in msgs.items():
            widx = shard % len(self._workers) if self._workers else 0
            try:
                self._workers[widx].post(msg)
            except WorkerDied as exc:
                failures[shard] = exc
                continue
            fifo.setdefault(widx, deque()).append(shard)
        deadline = time.monotonic() + self.call_timeout_s
        while fifo:
            conns = {self._workers[w].conn: w for w in fifo}
            timeout = max(0.0, deadline - time.monotonic())
            ready = mp_connection.wait(list(conns), timeout=timeout)
            if not ready:
                timed_out = WorkerDied(
                    f"worker call timed out after {self.call_timeout_s}s"
                )
                for widx in list(fifo):
                    self._workers[widx].kill()
                    for shard in fifo.pop(widx):
                        failures[shard] = timed_out
                break
            for conn in ready:
                widx = conns[conn]
                queue = fifo.get(widx)
                if not queue:
                    continue
                try:
                    while queue:
                        reply = conn.recv()
                        shard = queue.popleft()
                        kind = reply[0]
                        if kind == "stale":
                            failures[shard] = _Stale(str(reply[1]))
                        elif kind == "budget":
                            failures[shard] = _OverBudget(str(reply[1]))
                        elif kind == "error":
                            failures[shard] = WorkerDied(
                                f"worker error: {reply[1]}"
                            )
                        else:
                            replies[shard] = reply
                        if not conn.poll(0):
                            break
                except (EOFError, OSError, BrokenPipeError) as exc:
                    self._workers[widx].kill()
                    died = WorkerDied(f"worker pipe failed: {exc!r}")
                    for shard in queue:
                        failures[shard] = died
                    queue.clear()
                if not queue:
                    del fifo[widx]
        return replies, failures

    def _cross_group(
        self,
        group: List[Pair],
        deadline: Optional[float],
        edge_ceiling: Optional[int],
    ) -> Dict[Pair, Verdict]:
        """Scatter–gather fixpoint for ≤64 cross-shard lanes."""
        plan = self._plan
        assert plan is not None
        target_shard = [plan.shard_of[t] for _, t in group]

        # Lane prune mask per shard: a lane enters shard k only if k can
        # still reach the lane's target shard in the quotient closure.
        prune_cache: Dict[int, int] = {}

        def prune_mask(shard: int) -> int:
            mask = prune_cache.get(shard)
            if mask is None:
                mask = 0
                reach = plan.quotient_reach[shard]
                for lane, kt in enumerate(target_shard):
                    if kt in reach:
                        mask |= 1 << lane
                prune_cache[shard] = mask
            return mask

        # Targets to probe inside each shard, by lane mask.
        targets_in: Dict[int, Dict[int, int]] = {}
        for lane, (_s, t) in enumerate(group):
            shard_targets = targets_in.setdefault(target_shard[lane], {})
            shard_targets[t] = shard_targets.get(t, 0) | (1 << lane)

        sent: Dict[int, Dict[int, int]] = {}
        frontier: Dict[int, Dict[int, int]] = {}
        for lane, (s, _t) in enumerate(group):
            shard_seeds = frontier.setdefault(plan.shard_of[s], {})
            shard_seeds[s] = shard_seeds.get(s, 0) | (1 << lane)

        result = 0
        rounds = 0
        while frontier:
            # One scatter round: every frontier shard gets its seeds in
            # one posted message, replies are gathered together — the
            # round trips of a whole BFS level overlap instead of
            # queueing one behind another.
            msgs: Dict[int, Tuple] = {}
            for shard, seeds in frontier.items():
                live = prune_mask(shard) & ~result
                shard_sent = sent.setdefault(shard, {})
                fresh: List[Tuple[int, int]] = []
                for v, mask in seeds.items():
                    mask &= live & ~shard_sent.get(v, 0)
                    if mask:
                        fresh.append((v, mask))
                        shard_sent[v] = shard_sent.get(v, 0) | mask
                if fresh:
                    msgs[shard] = (
                        "reach",
                        plan.version,
                        shard,
                        fresh,
                        list(targets_in.get(shard, {})),
                        True,
                        self._time_left(deadline),
                        edge_ceiling,
                    )
            if not msgs:
                break
            rounds += 1
            replies, failures = self._scatter(msgs)
            if failures:
                # Containment is all-or-nothing per group: a partial
                # fixpoint could answer a lane False while the dead
                # shard held its only path. _scatter already drained
                # the surviving replies, so the pipes stay coherent.
                raise next(iter(failures.values()))
            frontier = {}
            for shard, reply in replies.items():
                _ok, labels, stats = reply
                self._incr("worker_edge_accesses", int(stats[2]))
                for t, lane_mask in targets_in.get(shard, {}).items():
                    result |= labels.get(t, 0) & lane_mask
                cross_edges = plan.cross_out.get(shard, {})
                for u, mask in labels.items():
                    heads = cross_edges.get(u)
                    if not heads:
                        continue
                    carry = mask & ~result
                    if not carry:
                        continue
                    for v, kv in heads:
                        next_seeds = frontier.setdefault(kv, {})
                        next_seeds[v] = next_seeds.get(v, 0) | carry
        self._incr("route_cross_rounds", rounds)

        verdicts: Dict[Pair, Verdict] = {}
        for lane, pair in enumerate(group):
            verdicts[pair] = (bool((result >> lane) & 1), "cross")
        return verdicts

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        plan_summary = self._plan.summary() if self._plan is not None else {}
        return {
            "requested_shards": self.requested_shards,
            "mode": "pipelined" if self.pipeline else "sync",
            "inflight_window": self.inflight_window,
            "healthy": self.healthy,
            "num_workers": len(self._workers),
            "workers_alive": sum(1 for w in self._workers if w.alive),
            "respawn_attempts": list(self._respawn_attempts),
            "plan": plan_summary,
            "counters": dict(self.counters),
        }
