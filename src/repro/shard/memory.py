"""Shared-memory segment protocol for frozen CSR shards.

A shard's :class:`~repro.graph.snapshot.CSRSnapshot` is published once
into a named ``multiprocessing.shared_memory`` block; workers attach by
name and rebuild numpy views with
:meth:`~repro.graph.snapshot.CSRSnapshot.from_buffers` — zero copies, so
K workers share one physical copy of each shard regardless of K.

Segment names are version-stamped (``ifca{pid}s{shard}v{version}``):
republishing after a graph epoch creates *new* segments, workers swap to
them on a ``("swap", ...)`` message, and the primary unlinks the old
names afterwards. A worker still holding old views keeps a valid mapping
until it drops them (POSIX unlink semantics), so the swap never races
the reader.

The attach path has to fight ``resource_tracker``: spawned workers share
the primary's tracker daemon, whose per-type cache is a plain set — an
attaching worker re-registering the name is a no-op, but *unregistering*
(the widely circulated pre-3.13 workaround) would remove the primary's
own entry and make the primary's later unlink scream. Python 3.13 grew
``track=False`` for exactly this; on older versions registration is
suppressed for the duration of the attach instead.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Tuple

from repro.graph.snapshot import CSRSnapshot


def segment_name(shard: int, version: int, *, pid: int = 0) -> str:
    """Canonical version-stamped segment name for one shard."""
    return f"ifca{pid or os.getpid()}s{shard}v{version}"


@dataclass
class SegmentHandle:
    """The primary's grip on one published segment."""

    name: str
    manifest: Dict[str, object]
    shm: shared_memory.SharedMemory
    _closed: bool = field(default=False, init=False)

    def close(self, *, unlink: bool = True) -> None:
        """Drop the mapping and (by default) unlink the name.

        Idempotent: teardown paths that overlap (a failed swap falling
        back to a full redeploy, a router closed mid-respawn) may close
        the same handle twice, and the second call must not unlink a
        name a newer epoch could have reused.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - views still exported
            # A live numpy view pins the mapping; the handle is dropped
            # and the OS reclaims it when the last view dies.
            pass
        if unlink:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


def publish_snapshot(csr: CSRSnapshot, name: str) -> SegmentHandle:
    """Copy a snapshot's arrays into a fresh named segment."""
    manifest, _arrays = csr.to_buffers()
    shm = shared_memory.SharedMemory(
        create=True, name=name, size=int(manifest["total_bytes"])
    )
    csr.pack_into(shm.buf)
    return SegmentHandle(name=name, manifest=manifest, shm=shm)


def attach_snapshot(
    name: str, manifest: Dict[str, object]
) -> Tuple[shared_memory.SharedMemory, CSRSnapshot]:
    """Attach a published segment and rebuild the snapshot zero-copy.

    The returned ``SharedMemory`` handle owns the mapping — keep it alive
    as long as the snapshot is used, and close it only after dropping the
    snapshot (its arrays are views into the mapping).
    """
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)  # 3.13+
    except TypeError:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register  # type: ignore[assignment]
    return shm, CSRSnapshot.from_buffers(manifest, shm.buf)
