"""Event-driven pipelined scheduler over the shard worker pool.

The legacy router runs one cross-shard group at a time and barriers on
every BFS round: post to the frontier shards, block until the slowest
reply, repeat. K workers mostly idle while one round's straggler
finishes. This module replaces that with a reactor:

- **Jobs, not rounds.** The unit of work is one tagged request — an
  intra-shard ≤64-lane wave or one shard's closure step of one
  cross-shard group. All jobs from all groups share one global queue.
- **Chaotic iteration.** The cross-shard fixpoint is a monotone join
  (per-shard ``sent`` masks and the ``result`` word only grow), so it is
  confluent: a group may advance the moment *its own* reply lands,
  regardless of what other shards or other groups are doing. No round
  barrier is needed for correctness — only for the old code's control
  flow.
- **Worker pool.** Every worker has every shard's segment attached
  (shared physical pages), so any job can run on any worker. The
  scheduler posts to the least-loaded live worker, bounded by a
  per-worker in-flight ``window``; when every live worker's window is
  full the queue backs up (``route_inflight_stalls``) instead of
  overrunning the pipes.
- **Reply matching.** Requests are tagged with run-local ids
  (``(req_id, msg)`` on the wire, see :mod:`repro.shard.worker`), so the
  reactor can hold many requests in flight per worker and match each
  reply to its job no matter the completion order across the fleet.

**Containment.** The PR 9 contract holds under pipelining: a worker
death (pipe error, EOF, or oldest-request age past ``call_timeout_s`` —
the SIGSTOP conviction) kills only that worker and fails only *its*
in-flight jobs. A failed intra job surrenders its pairs as unresolved; a
failed cross job cancels its whole group (all-or-nothing: a partial
fixpoint could answer a lane ``False`` while the dead shard held its
only path). A cancelled group's requests still in flight on *surviving*
workers are drained and discarded as their replies arrive — the tagged
protocol keeps every pipe coherent for the next batch.
"""

from __future__ import annotations

import time
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Deque, Dict, List, Optional, Tuple

Pair = Tuple[int, int]
Verdict = Tuple[bool, str]


class GroupState:
    """One ≤64-lane cross-shard fixpoint, advanced reply by reply."""

    __slots__ = (
        "pairs", "target_shard", "targets_in", "sent", "prune_cache",
        "frontier", "result", "outstanding", "failed", "done",
    )

    def __init__(self, plan, pairs: List[Pair]) -> None:
        self.pairs = pairs
        self.target_shard = [plan.shard_of[t] for _, t in pairs]
        # Targets to probe inside each shard, by lane mask.
        self.targets_in: Dict[int, Dict[int, int]] = {}
        for lane, (_s, t) in enumerate(pairs):
            shard_targets = self.targets_in.setdefault(
                self.target_shard[lane], {}
            )
            shard_targets[t] = shard_targets.get(t, 0) | (1 << lane)
        self.sent: Dict[int, Dict[int, int]] = {}
        self.prune_cache: Dict[int, int] = {}
        self.frontier: Dict[int, Dict[int, int]] = {}
        for lane, (s, _t) in enumerate(pairs):
            seeds = self.frontier.setdefault(plan.shard_of[s], {})
            seeds[s] = seeds.get(s, 0) | (1 << lane)
        self.result = 0
        self.outstanding = 0
        self.failed = False
        self.done = False

    def prune_mask(self, plan, shard: int) -> int:
        """Lanes allowed to enter ``shard`` (quotient-closure prune)."""
        mask = self.prune_cache.get(shard)
        if mask is None:
            mask = 0
            reach = plan.quotient_reach[shard]
            for lane, kt in enumerate(self.target_shard):
                if kt in reach:
                    mask |= 1 << lane
            self.prune_cache[shard] = mask
        return mask

    def absorb(self, plan, shard: int, labels: Dict[int, int]) -> None:
        """Fold one shard's closure reply into the lane state."""
        for t, lane_mask in self.targets_in.get(shard, {}).items():
            self.result |= labels.get(t, 0) & lane_mask
        cross_edges = plan.cross_out.get(shard, {})
        for u, mask in labels.items():
            heads = cross_edges.get(u)
            if not heads:
                continue
            carry = mask & ~self.result
            if not carry:
                continue
            for v, kv in heads:
                seeds = self.frontier.setdefault(kv, {})
                seeds[v] = seeds.get(v, 0) | carry

    def flush(self, plan) -> List[Tuple[int, List[Tuple[int, int]]]]:
        """Drain the frontier into fresh ``(shard, seeds)`` posts.

        Seeds already sent to a shard, lanes already proven, and lanes
        the quotient closure prunes for that shard are all masked out;
        the monotone ``sent`` record is what bounds the fixpoint.
        """
        posts: List[Tuple[int, List[Tuple[int, int]]]] = []
        for shard, seeds in self.frontier.items():
            live = self.prune_mask(plan, shard) & ~self.result
            if not live:
                continue
            shard_sent = self.sent.setdefault(shard, {})
            fresh: List[Tuple[int, int]] = []
            for v, mask in seeds.items():
                mask &= live & ~shard_sent.get(v, 0)
                if mask:
                    fresh.append((v, mask))
                    shard_sent[v] = shard_sent.get(v, 0) | mask
            if fresh:
                posts.append((shard, fresh))
        self.frontier = {}
        return posts

    def verdicts(self) -> Dict[Pair, Verdict]:
        """Final lane verdicts — sound only once the group drained."""
        return {
            pair: (bool((self.result >> lane) & 1), "cross")
            for lane, pair in enumerate(self.pairs)
        }


class _IntraJob:
    __slots__ = ("shard", "pairs")

    def __init__(self, shard: int, pairs: List[Pair]) -> None:
        self.shard = shard
        self.pairs = pairs


class _CrossJob:
    __slots__ = ("group", "shard", "seeds")

    def __init__(
        self, group: GroupState, shard: int, seeds: List[Tuple[int, int]]
    ) -> None:
        self.group = group
        self.shard = shard
        self.seeds = seeds


class PipelineRun:
    """One batch's reactor: queue jobs, multiplex pipes, match replies."""

    def __init__(self, router, *, deadline=None, edge_ceiling=None) -> None:
        self._router = router
        self._plan = router._plan
        self._deadline = deadline
        self._edge_ceiling = edge_ceiling
        self._window = max(1, int(router.inflight_window))
        self._pending: Deque = deque()
        # req_id -> (job, worker index, posted-at monotonic stamp)
        self._inflight: Dict[int, Tuple[object, int, float]] = {}
        self._worker_load: List[int] = [0] * len(router._workers)
        self._next_id = 0
        self.resolved: Dict[Pair, Verdict] = {}
        self.unresolved: List[Pair] = []

    # -- job intake ----------------------------------------------------
    def add_intra(self, shard: int, pairs: List[Pair]) -> None:
        self._pending.append(_IntraJob(shard, list(pairs)))

    def add_group(self, pairs: List[Pair]) -> None:
        group = GroupState(self._plan, list(pairs))
        self._spawn_group_posts(group)

    # -- reactor loop --------------------------------------------------
    def run(self) -> Tuple[Dict[Pair, Verdict], List[Pair]]:
        while self._pending or self._inflight:
            self._pump()
            if not self._inflight:
                # Nothing postable and nothing to wait on: the fleet is
                # gone (every pump failure path drains into unresolved).
                self._fail_all_pending()
                break
            self._wait_once()
        return self.resolved, self.unresolved

    def _pump(self) -> None:
        """Post queued jobs into live workers' open window slots."""
        stalled = False
        while self._pending:
            job = self._pending[0]
            if isinstance(job, _CrossJob) and job.group.failed:
                self._pending.popleft()
                continue
            widx = self._pick_worker()
            if widx < 0:
                if self._inflight:
                    stalled = True
                else:
                    self._fail_all_pending()
                break
            self._pending.popleft()
            self._post(job, widx)
        if stalled:
            self._router._incr("route_inflight_stalls")

    def _pick_worker(self) -> int:
        best, best_load = -1, None
        for idx, worker in enumerate(self._router._workers):
            if not worker.alive:
                continue
            load = self._worker_load[idx]
            if load >= self._window:
                continue
            if best_load is None or load < best_load:
                best, best_load = idx, load
        return best

    def _encode(self, job) -> Tuple:
        time_left = self._router._time_left(self._deadline)
        version = self._plan.version
        if isinstance(job, _IntraJob):
            return (
                "wave", version, job.shard, job.pairs, "forward",
                time_left, self._edge_ceiling,
            )
        return (
            "reach", version, job.shard, job.seeds,
            list(job.group.targets_in.get(job.shard, {})), True,
            time_left, self._edge_ceiling,
        )

    def _post(self, job, widx: int) -> None:
        handle = self._router._workers[widx]
        req_id = self._next_id
        self._next_id += 1
        try:
            handle.conn.send((req_id, self._encode(job)))
        except (OSError, BrokenPipeError, ValueError):
            self._convict(widx, "worker pipe failed on post")
            # The job itself is fine — retry it on another worker.
            if not (isinstance(job, _CrossJob) and job.group.failed):
                self._pending.appendleft(job)
            return
        self._inflight[req_id] = (job, widx, time.monotonic())
        self._worker_load[widx] += 1

    def _wait_once(self) -> None:
        """One reactor turn: multiplex every pipe with work in flight."""
        router = self._router
        timeout_s = router.call_timeout_s
        now = time.monotonic()
        # Conviction deadline per worker: its *oldest* in-flight request
        # must answer within call_timeout_s. This is the SIGSTOP catch —
        # a stopped worker's pipe never goes ready, only stale.
        convict_at: Dict[int, float] = {}
        for _job, widx, posted in self._inflight.values():
            stamp = posted + timeout_s
            if widx not in convict_at or stamp < convict_at[widx]:
                convict_at[widx] = stamp
        conns = {}
        for widx in convict_at:
            worker = router._workers[widx]
            if worker.alive:
                conns[worker.conn] = widx
        if not conns:
            # Every worker with in-flight work is already dead.
            for widx in list(convict_at):
                self._convict(widx, "worker died")
            return
        timeout = max(0.0, min(convict_at.values()) - now)
        ready = mp_connection.wait(list(conns), timeout=timeout)
        for conn in ready:
            widx = conns[conn]
            try:
                while True:
                    self._on_reply(widx, conn.recv())
                    if not conn.poll(0):
                        break
            except (EOFError, OSError, BrokenPipeError):
                self._convict(widx, "worker pipe failed")
        now = time.monotonic()
        for widx, stamp in convict_at.items():
            if now >= stamp and self._oldest_post(widx) is not None:
                age = now - self._oldest_post(widx)
                if age >= timeout_s:
                    self._convict(
                        widx, f"worker call timed out after {timeout_s}s"
                    )

    def _oldest_post(self, widx: int) -> Optional[float]:
        oldest = None
        for _job, owner, posted in self._inflight.values():
            if owner == widx and (oldest is None or posted < oldest):
                oldest = posted
        return oldest

    # -- reply handling ------------------------------------------------
    def _on_reply(self, widx: int, reply) -> None:
        req_id, payload = reply
        entry = self._inflight.pop(req_id, None)
        if entry is None:  # pragma: no cover - unknown id, ignore
            return
        job, owner, _posted = entry
        self._worker_load[owner] -= 1
        router = self._router
        kind = payload[0]
        if isinstance(job, _IntraJob):
            if kind == "ok":
                _ok, answers, stats = payload
                router._incr("worker_edge_accesses", int(stats[2]))
                router._incr("route_waves", int(stats[4]))
                router._incr("route_wave_pairs", len(job.pairs))
                for pair, answer in zip(job.pairs, answers):
                    self.resolved[pair] = (bool(answer), "wave")
            else:
                self._note_reply_failure(kind, payload)
                self.unresolved.extend(job.pairs)
            return
        group = job.group
        group.outstanding -= 1
        if group.failed:
            return  # draining a cancelled group's straggler
        if kind != "ok":
            self._note_reply_failure(kind, payload)
            self._fail_group(group)
            return
        _ok, labels, stats = payload
        router._incr("worker_edge_accesses", int(stats[2]))
        group.absorb(self._plan, job.shard, labels)
        self._spawn_group_posts(group)

    def _spawn_group_posts(self, group: GroupState) -> None:
        posts = group.flush(self._plan)
        for shard, seeds in posts:
            group.outstanding += 1
            self._pending.append(_CrossJob(group, shard, seeds))
        if posts:
            self._router._incr("route_cross_posts", len(posts))
        elif group.outstanding == 0 and not group.done:
            group.done = True
            self.resolved.update(group.verdicts())
            self._router._incr("route_cross_groups")
            self._router._incr("route_cross_pairs", len(group.pairs))

    def _note_reply_failure(self, kind: str, payload) -> None:
        router = self._router
        if kind == "budget":
            router._incr("route_budget_exceeded")
        elif kind == "stale":
            router._incr("route_stale")
        else:
            router._incr("worker_failures")

    # -- failure paths -------------------------------------------------
    def _fail_group(self, group: GroupState) -> None:
        """All-or-nothing cancel: every lane goes back unresolved."""
        group.failed = True
        self.unresolved.extend(group.pairs)

    def _convict(self, widx: int, reason: str) -> None:
        """Kill one worker and fail only *its* in-flight jobs."""
        router = self._router
        handle = router._workers[widx]
        if handle.alive:
            handle.kill()
            router._incr("worker_failures")
        doomed = [
            req_id
            for req_id, (_job, owner, _posted) in self._inflight.items()
            if owner == widx
        ]
        for req_id in doomed:
            job, _owner, _posted = self._inflight.pop(req_id)
            if isinstance(job, _IntraJob):
                self.unresolved.extend(job.pairs)
            else:
                job.group.outstanding -= 1
                if not job.group.failed and not job.group.done:
                    self._fail_group(job.group)
        self._worker_load[widx] = 0

    def _fail_all_pending(self) -> None:
        while self._pending:
            job = self._pending.popleft()
            if isinstance(job, _IntraJob):
                self.unresolved.extend(job.pairs)
            else:
                job.group.outstanding -= 1
                if not job.group.failed and not job.group.done:
                    self._fail_group(job.group)
