"""Shard worker process: attach, sweep, swap.

Spawned (never forked — numpy state and the primary's locks must not be
inherited) with one end of a duplex pipe and a segment spec. The worker
attaches its shard's shared-memory segment, rebuilds the frozen
:class:`~repro.graph.snapshot.CSRSnapshot` zero-copy, and then serves a
tuple-message loop:

``("ping",)``
    → ``("ok", version)`` — liveness + version handshake.
``("probe", version)``
    → ``("ok", version, (num_vertices, num_edges))`` — liveness *plus* a
    read through the attached CSR mapping: proves a freshly respawned
    worker really re-attached the published segment, not just that its
    pipe answers.
``("wave", version, pairs, lead, time_left, edge_ceiling)``
    → ``("ok", answers, stats)`` — intra-shard bit-parallel BiBFS over
    any number of pairs, chunked worker-side into ≤64-lane waves
    (:func:`~repro.graph.bitsearch.csr_bit_bibfs`). One message per
    shard per batch: the chunk loop lives here precisely so the primary
    pays one IPC round trip per shard, not one per 64 lanes.
``("reach", version, seeds, extra_probes, forward, time_left, edge_ceiling)``
    → ``("ok", labels, stats)`` — one bit-label closure
    (:func:`~repro.graph.bitsearch.csr_bit_reach`) reporting the shard's
    standing boundary probes plus ``extra_probes``.
``("swap", spec)``
    → ``("ok", version)`` — attach the republished segment for a new
    graph epoch, then drop the old mapping.
``("stop",)``
    → ``("ok", "bye")`` and exit.

Version mismatches answer ``("stale", worker_version)``; expired budgets
answer ``("budget", reason)``; any other exception answers
``("error", repr)`` and the loop survives — containment is the router's
job, the worker just reports.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.core.budget import Budget, BudgetExceeded
from repro.graph.bitsearch import csr_bit_bibfs, csr_bit_reach
from repro.shard.memory import attach_snapshot

#: Lanes per bit-parallel wave — one query per bit of a 64-bit word.
_WAVE_LANES = 64


class _ShardState:
    """The worker's view of one published shard epoch."""

    def __init__(self, spec: Dict[str, object]) -> None:
        self.version = int(spec["version"])
        self.boundary: List[int] = list(spec["boundary_out"])  # type: ignore[arg-type]
        self.shm, self.csr = attach_snapshot(
            str(spec["name"]), spec["manifest"]  # type: ignore[arg-type]
        )

    def release(self) -> None:
        """Drop the mapping (best effort: live views pin it)."""
        self.csr = None  # type: ignore[assignment]
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - a view outlived the swap
            pass


def _budget(time_left: Optional[float], edge_ceiling: Optional[int]) -> Optional[Budget]:
    if time_left is None and edge_ceiling is None:
        return None
    return Budget.from_timeout(time_left, edge_ceiling)


def shard_worker_main(conn, spec: Dict[str, object]) -> None:
    """Entry point for one spawned shard worker (blocks until stopped)."""
    state = _ShardState(spec)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            kind = msg[0]
            if kind == "stop":
                conn.send(("ok", "bye"))
                break
            try:
                if kind == "swap":
                    new_state = _ShardState(msg[1])
                    conn.send(("ok", new_state.version))
                    state.release()
                    state = new_state
                else:
                    conn.send(_handle(state, msg))
            except BudgetExceeded as exc:
                conn.send(("budget", exc.reason))
            except Exception as exc:  # noqa: BLE001 - report, don't die
                conn.send(("error", repr(exc)))
    finally:
        state.release()
        conn.close()


def _handle(state: _ShardState, msg: Tuple) -> Tuple:
    kind = msg[0]
    if kind == "ping":
        return ("ok", state.version)
    if kind == "probe":
        if msg[1] != state.version:
            return ("stale", state.version)
        # Touch the mapping end to end — a probe must fault the pages a
        # respawned worker claims to have re-attached.
        csr = state.csr
        return ("ok", state.version, (csr.num_vertices, csr.num_edges))
    if kind == "wave":
        _version, pairs, lead, time_left, edge_ceiling = msg[1:]
        if _version != state.version:
            return ("stale", state.version)
        started = time.perf_counter()
        # One shared budget across all chunks: the edge ceiling bounds
        # the whole per-shard batch, not each 64-lane wave separately.
        budget = _budget(time_left, edge_ceiling)
        answers: List[bool] = []
        lanes = layers = edges = waves = 0
        for start in range(0, len(pairs), _WAVE_LANES):
            chunk = [tuple(p) for p in pairs[start : start + _WAVE_LANES]]
            chunk_answers, stats = csr_bit_bibfs(
                state.csr, chunk, budget=budget, lead=lead
            )
            answers.extend(chunk_answers)
            lanes += stats.lanes
            layers += stats.layers
            edges += stats.edge_accesses
            waves += 1
        return (
            "ok",
            answers,
            (lanes, layers, edges, time.perf_counter() - started, waves),
        )
    if kind == "reach":
        _version, seeds, extra_probes, forward, time_left, edge_ceiling = msg[1:]
        if _version != state.version:
            return ("stale", state.version)
        started = time.perf_counter()
        probes = state.boundary if not extra_probes else [
            *state.boundary, *extra_probes
        ]
        labels, stats = csr_bit_reach(
            state.csr,
            [tuple(s) for s in seeds],
            probes,
            forward=bool(forward),
            budget=_budget(time_left, edge_ceiling),
        )
        return (
            "ok",
            labels,
            (stats.lanes, stats.layers, stats.edge_accesses,
             time.perf_counter() - started),
        )
    return ("error", f"unknown message kind {kind!r}")
