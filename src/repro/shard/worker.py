"""Shard worker process: attach every segment, serve tagged waves.

Spawned (never forked — numpy state and the primary's locks must not be
inherited) with one end of a duplex pipe and the *fleet* spec: the
shared-memory segment of **every** shard in the plan. Attaching all of
them costs nothing beyond page-table entries — the segments are shared
physical pages — and it is what turns the fleet from K shard-bound
processes into a worker *pool*: any worker can serve a wave for any
shard, so the scheduler can hand a busy shard's waves to idle workers.

Wire protocol
-------------
Every request may be **tagged**: ``(req_id, msg)`` with an ``int``
request id answers ``(req_id, reply)``. Tagging is what lets the
pipelined router keep several requests in flight per worker and match
replies out of posted order across the fleet; the worker itself still
serves its own pipe strictly FIFO. Untagged messages (the legacy
round-synchronous path and the control plane) answer bare ``reply``
tuples exactly as before.

``("ping",)``
    → ``("ok", version)`` — liveness + version handshake.
``("probe", version)``
    → ``("ok", version, [(num_vertices, num_edges), ...])`` — liveness
    *plus* a read through every attached CSR mapping: proves a freshly
    respawned worker really re-attached all published segments, not
    just that its pipe answers.
``("wave", version, shard, pairs, lead, time_left, edge_ceiling)``
    → ``("ok", answers, stats)`` — intra-shard bit-parallel BiBFS over
    shard ``shard``'s CSR, chunked worker-side into ≤64-lane waves
    (:func:`~repro.graph.bitsearch.csr_bit_bibfs`). One shared budget
    spans the message's chunks: the edge ceiling bounds the whole
    per-message batch, not each 64-lane wave separately.
``("reach", version, shard, seeds, extra_probes, forward, time_left, edge_ceiling)``
    → ``("ok", labels, stats)`` — one bit-label closure over shard
    ``shard`` (:func:`~repro.graph.bitsearch.csr_bit_reach`) reporting
    that shard's standing boundary probes plus ``extra_probes``.
``("swap", spec)``
    → ``("ok", version)`` — attach the republished fleet spec for a new
    graph epoch, then drop the old mappings.
``("stop",)``
    → ``("ok", "bye")`` and exit.

Version mismatches answer ``("stale", worker_version)``; an unknown
shard index answers ``("error", ...)``; expired budgets answer
``("budget", reason)``; any other exception answers ``("error", repr)``
and the loop survives — containment is the router's job, the worker
just reports.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.core.budget import Budget, BudgetExceeded
from repro.graph.bitsearch import csr_bit_bibfs, csr_bit_reach
from repro.shard.memory import attach_snapshot

#: Lanes per bit-parallel wave — one query per bit of a 64-bit word.
_WAVE_LANES = 64


class _FleetState:
    """The worker's view of one published fleet epoch (all shards)."""

    def __init__(self, spec: Dict[str, object]) -> None:
        self.version = int(spec["version"])
        self.boundaries: List[List[int]] = []
        self.shms = []
        self.csrs = []
        try:
            for shard_spec in spec["shards"]:  # type: ignore[union-attr]
                shm, csr = attach_snapshot(
                    str(shard_spec["name"]), shard_spec["manifest"]
                )
                self.shms.append(shm)
                self.csrs.append(csr)
                self.boundaries.append(list(shard_spec["boundary_out"]))
        except Exception:
            self.release()
            raise

    def release(self) -> None:
        """Drop every mapping (best effort: live views pin them)."""
        self.csrs = []
        for shm in self.shms:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - a view outlived the swap
                pass
        self.shms = []


def _budget(time_left: Optional[float], edge_ceiling: Optional[int]) -> Optional[Budget]:
    if time_left is None and edge_ceiling is None:
        return None
    return Budget.from_timeout(time_left, edge_ceiling)


def shard_worker_main(conn, spec: Dict[str, object]) -> None:
    """Entry point for one spawned shard worker (blocks until stopped)."""
    state = _FleetState(spec)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            # Tagged request: (req_id, msg). The id is opaque to the
            # worker — it is echoed on the reply so the router can match
            # replies out of posted order across many in-flight requests.
            req_id = None
            if isinstance(msg[0], int):
                req_id, msg = msg[0], msg[1]

            def respond(reply: Tuple) -> None:
                conn.send(reply if req_id is None else (req_id, reply))

            kind = msg[0]
            if kind == "stop":
                respond(("ok", "bye"))
                break
            try:
                if kind == "swap":
                    new_state = _FleetState(msg[1])
                    respond(("ok", new_state.version))
                    state.release()
                    state = new_state
                else:
                    respond(_handle(state, msg))
            except BudgetExceeded as exc:
                respond(("budget", exc.reason))
            except Exception as exc:  # noqa: BLE001 - report, don't die
                respond(("error", repr(exc)))
    finally:
        state.release()
        conn.close()


def _handle(state: _FleetState, msg: Tuple) -> Tuple:
    kind = msg[0]
    if kind == "ping":
        return ("ok", state.version)
    if kind == "probe":
        if msg[1] != state.version:
            return ("stale", state.version)
        # Touch every mapping end to end — a probe must fault the pages
        # a respawned worker claims to have re-attached.
        return (
            "ok",
            state.version,
            [(csr.num_vertices, csr.num_edges) for csr in state.csrs],
        )
    if kind == "wave":
        _version, shard, pairs, lead, time_left, edge_ceiling = msg[1:]
        if _version != state.version:
            return ("stale", state.version)
        csr = state.csrs[shard]
        started = time.perf_counter()
        budget = _budget(time_left, edge_ceiling)
        answers: List[bool] = []
        lanes = layers = edges = waves = 0
        for start in range(0, len(pairs), _WAVE_LANES):
            chunk = [tuple(p) for p in pairs[start : start + _WAVE_LANES]]
            chunk_answers, stats = csr_bit_bibfs(
                csr, chunk, budget=budget, lead=lead
            )
            answers.extend(chunk_answers)
            lanes += stats.lanes
            layers += stats.layers
            edges += stats.edge_accesses
            waves += 1
        return (
            "ok",
            answers,
            (lanes, layers, edges, time.perf_counter() - started, waves),
        )
    if kind == "reach":
        (_version, shard, seeds, extra_probes, forward,
         time_left, edge_ceiling) = msg[1:]
        if _version != state.version:
            return ("stale", state.version)
        started = time.perf_counter()
        boundary = state.boundaries[shard]
        probes = boundary if not extra_probes else [*boundary, *extra_probes]
        labels, stats = csr_bit_reach(
            state.csrs[shard],
            [tuple(s) for s in seeds],
            probes,
            forward=bool(forward),
            budget=_budget(time_left, edge_ceiling),
        )
        return (
            "ok",
            labels,
            (stats.lanes, stats.layers, stats.edge_accesses,
             time.perf_counter() - started),
        )
    return ("error", f"unknown message kind {kind!r}")
