"""Sharded multi-process serving: partition, publish, route.

The package cuts one :class:`~repro.graph.digraph.DynamicDiGraph` into K
edge-balanced shards along its SCC condensation (plus a community sweep
inside any SCC too big to balance), publishes each shard's frozen
:class:`~repro.graph.snapshot.CSRSnapshot` into
``multiprocessing.shared_memory`` for zero-copy worker processes, and
routes queries: intra-shard pairs as one worker round trip, cross-shard
pairs as a scatter–gather join of per-shard bit-parallel closures through
the condensation DAG.

Layering: :mod:`repro.shard.partition` is pure graph analysis (no
processes), :mod:`repro.shard.memory` owns the shared-memory segment
protocol, :mod:`repro.shard.worker` is the spawned child's entry point,
:mod:`repro.shard.pipeline` is the event-driven scheduler that keeps the
worker pool saturated, and :mod:`repro.shard.router` drives the fleet on
the primary. The serving engine reaches all of it through
:class:`~repro.shard.router.ShardRouter` only.
"""

from repro.shard.partition import ShardInfo, ShardPlan, partition_graph
try:  # router needs numpy + multiprocessing; partition is always importable
    from repro.shard.router import (
        ShardRouter,
        ShardWorkerHandle,
        WorkerDied,
        classify_pair,
    )
except ImportError:  # pragma: no cover - no-numpy installs
    ShardRouter = None  # type: ignore[assignment]
    ShardWorkerHandle = None  # type: ignore[assignment]
    WorkerDied = None  # type: ignore[assignment]
    classify_pair = None  # type: ignore[assignment]

__all__ = [
    "ShardInfo",
    "ShardPlan",
    "partition_graph",
    "ShardRouter",
    "ShardWorkerHandle",
    "WorkerDied",
    "classify_pair",
]
