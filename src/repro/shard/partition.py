"""Edge-balanced graph partitioning along the SCC condensation.

The cut follows the same structural facts IFCA's fast path and the
related condensation indexes (DAGGER) exploit, arranged so that *every*
partition-level verdict the router hands out is exact:

**Topo-contiguous segments are closed.** Order the SCCs topologically
(sources first). Any path between two vertices whose SCCs sit at topo
positions ``p <= q`` only visits SCCs at positions in ``[p, q]`` —
condensation edges strictly increase topo position. So if a shard is a
*contiguous run* of the topo order, a path between two of its vertices
can never leave the shard: intra-shard positives **and negatives** are
provable from the shard's induced subgraph alone. These shards are marked
``closed``.

**Oversized SCCs split into open shards with exact class summaries.**
A single SCC can hold most of the edge volume (scale-free graphs grow a
giant cyclic core), so edge balance forces cutting through it. Inside one
SCC every vertex reaches every other, which buys back what the cut gives
up: reachability *through* the SCC is a property of the whole class, not
of any member. The partitioner runs one forward and one reverse BFS from
the class and records ``reached_from_class`` / ``reaches_class`` — an
O'Reach-style supportive pair anchored at the class. Those two sets
resolve **every** query touching or crossing the class in O(1):

* ``s`` reaches class and class reaches ``t``  →  ``True``;
* ``s`` inside the class: any path from ``s`` starts in the class, so the
  answer is exactly ``t in reached_from_class`` (symmetrically for ``t``
  inside the class);
* consequently the scatter–gather search never has to *enter* a class
  shard — a path through it would have been answered above — so cross
  traffic runs purely over the (small) periphery segments.

The split inside the class itself reuses the community machinery
(:func:`repro.ppr.forward_push` + :func:`repro.community.sweep.sweep_cut`)
to seed each piece with a low-conductance core before balancing it by
BFS growth, keeping cross-piece edges low for the worker waves that do
run inside the class (intra-shard pairs of a class shard are same-SCC and
thus trivially ``True``; the waves serve pairs *entering* the piece in
mixed workloads).

**The shard quotient refutes in O(1).** The K-node quotient DAG of the
shards (class pieces collapse to their class) is tiny; its reachability
closure is precomputed, and ``shard(s)`` not reaching ``shard(t)``
refutes the pair before any search.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.community.sweep import sweep_cut
from repro.graph.digraph import DynamicDiGraph
from repro.graph.scc import strongly_connected_components
from repro.ppr.common import PushConfig
from repro.ppr.forward_push import forward_push

#: A component whose out-edge volume exceeds this multiple of the
#: per-shard target is split by community sweep instead of joining a
#: topo-contiguous segment.
SPLIT_FACTOR = 1.5

#: Push-operation cap per community seed — the sweep only needs a local
#: ordering around the seed, not a converged PPR vector.
_PUSH_CAP = 50_000


@dataclass(frozen=True)
class ShardInfo:
    """One shard of the partition."""

    index: int
    vertices: Tuple[int, ...]
    #: Intra-shard verdicts from the shard's induced subgraph are final
    #: (topo-contiguous segment). Class pieces are ``closed=False`` —
    #: their intra answers come from the class rules instead.
    closed: bool
    #: Identifier of the oversized SCC this shard is a piece of, or
    #: ``None`` for a segment shard.
    scc_class: Optional[int]
    #: Sum of member out-degrees (the balance unit; counts each edge once
    #: at its tail).
    edge_volume: int


@dataclass
class ShardPlan:
    """The full partition: assignment, subgraphs, and exact summaries."""

    version: int
    shard_of: Dict[int, int]
    shards: List[ShardInfo]
    #: Induced subgraph per shard (frozen to CSR by the publisher).
    subgraphs: List[DynamicDiGraph]
    #: Per segment shard: tail vertex -> [(head, head_shard)] for cross
    #: edges into *segment* shards only (class shards are never entered
    #: by the router; see the module docstring).
    cross_out: Dict[int, Dict[int, List[Tuple[int, int]]]]
    #: Per segment shard: sorted tails with at least one routed cross
    #: edge — the worker's standing probe set.
    boundary_out: Dict[int, List[int]]
    #: Shard -> frozenset of quotient-reachable shards (closure, incl.
    #: self, through *all* shards including class pieces).
    quotient_reach: Dict[int, FrozenSet[int]]
    #: vertex -> SCC id (Tarjan numbering).
    scc_of: Dict[int, int]
    #: Class id -> vertices that reach the class / are reached from it
    #: (both include the class members themselves).
    reaches_class: Dict[int, FrozenSet[int]]
    reached_from_class: Dict[int, FrozenSet[int]]
    #: Per shard: members with at least one *routed* out-edge (an edge
    #: inside the shard's subgraph, or a cross edge the fixpoint can
    #: traverse). A vertex absent here reaches nothing the router could
    #: ever search, so any non-identity pair from it is an exact ``False``
    #: — answered in O(1), no worker round trip. Mirrored by
    #: :attr:`live_in` on the head side. Sparse peripheries make this the
    #: workhorse rule: a segment can hold thousands of vertices and only
    #: a few hundred edges.
    live_out: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    live_in: Dict[int, FrozenSet[int]] = field(default_factory=dict)
    num_cross_edges: int = 0
    build_seconds: float = 0.0
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def class_of_shard(self, shard: int) -> Optional[int]:
        return self.shards[shard].scc_class

    def summary(self) -> Dict[str, object]:
        """Plain-data description for stats surfaces and logs."""
        return {
            "version": self.version,
            "num_shards": self.num_shards,
            "closed_shards": sum(1 for s in self.shards if s.closed),
            "class_shards": sum(
                1 for s in self.shards if s.scc_class is not None
            ),
            "cross_edges": self.num_cross_edges,
            "edge_volumes": [s.edge_volume for s in self.shards],
            "build_seconds": round(self.build_seconds, 3),
        }


def _bfs_closure(
    graph: DynamicDiGraph, sources: Sequence[int], forward: bool
) -> Set[int]:
    """Plain multi-source BFS closure (includes the sources)."""
    seen: Set[int] = set(sources)
    queue = deque(sources)
    neighbors = graph.out_neighbors if forward else graph.in_neighbors
    while queue:
        u = queue.popleft()
        for v in neighbors(u):
            if v not in seen:
                seen.add(v)
                queue.append(v)
    return seen


def _grow_piece(
    graph: DynamicDiGraph,
    seed: int,
    core: Set[int],
    remaining: Set[int],
    target_volume: int,
) -> List[int]:
    """Grow one balanced piece: community core first, then BFS fill.

    Undirected BFS from ``seed`` restricted to ``remaining``, visiting
    ``core`` members with priority (two-phase frontier), until the piece's
    out-edge volume reaches ``target_volume``. If a frontier exhausts
    before the target (the restricted subgraph went disconnected), growth
    restarts from the highest-degree vertex still remaining — balance is
    authoritative, connectivity best-effort.
    """
    piece: List[int] = []
    volume = 0
    visited: Set[int] = set()
    preferred: deque = deque()
    fallback: deque = deque()
    preferred.append(seed)
    visited.add(seed)

    def _take(v: int) -> None:
        nonlocal volume
        piece.append(v)
        volume += graph.out_degree(v)
        for w in graph.out_neighbors(v):
            if w in remaining and w not in visited:
                visited.add(w)
                (preferred if w in core else fallback).append(w)
        for w in graph.in_neighbors(v):
            if w in remaining and w not in visited:
                visited.add(w)
                (preferred if w in core else fallback).append(w)

    while volume < target_volume:
        if preferred:
            _take(preferred.popleft())
        elif fallback:
            _take(fallback.popleft())
        else:
            rest = remaining.difference(piece)
            if not rest:
                break
            restart = max(rest, key=lambda v: (graph.degree(v), -v))
            visited.add(restart)
            preferred.append(restart)
    return piece


def _split_component(
    graph: DynamicDiGraph, members: List[int], num_pieces: int
) -> List[List[int]]:
    """Cut one oversized SCC into ``num_pieces`` volume-balanced pieces.

    Each piece is seeded by a capped forward push from the highest-degree
    remaining vertex; the best-conductance sweep prefix of that PPR vector
    (clipped to the remaining members) forms the community core, and
    :func:`_grow_piece` balances it to the volume target.
    """
    member_set = set(members)
    total = sum(graph.out_degree(v) for v in members)
    target = max(1, -(-total // num_pieces))
    remaining = set(member_set)
    pieces: List[List[int]] = []
    while remaining and len(pieces) < num_pieces - 1:
        seed = max(remaining, key=lambda v: (graph.degree(v), -v))
        config = PushConfig(alpha=0.15, epsilon=1.0 / max(total, 10))
        state = forward_push(graph, seed, config, max_operations=_PUSH_CAP)
        local_ppr = {
            v: score
            for v, score in state.reserve.items()
            if v in remaining
        }
        core: Set[int] = set()
        if local_ppr:
            cut, _phi = sweep_cut(
                graph, local_ppr, max_size=max(2, 2 * len(members) // num_pieces)
            )
            core = cut & remaining
        core.add(seed)
        piece = _grow_piece(graph, seed, core, remaining, target)
        remaining.difference_update(piece)
        if piece:
            pieces.append(piece)
    if remaining:
        pieces.append(sorted(remaining))
    return [p for p in pieces if p]


def partition_graph(
    graph: DynamicDiGraph,
    num_shards: int,
    *,
    split_factor: float = SPLIT_FACTOR,
) -> ShardPlan:
    """Cut ``graph`` into (about) ``num_shards`` edge-balanced shards.

    The shard count is a target: tiny graphs yield fewer shards (a shard
    is never empty), and splitting an oversized SCC can add a piece. All
    derived facts (quotient closure, class summaries) are exact for
    ``graph`` at its current version.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    started = time.perf_counter()
    version = graph.version

    comps = strongly_connected_components(graph)
    topo = list(reversed(comps))  # sources first: edges go earlier -> later
    scc_of: Dict[int, int] = {}
    for cid, comp in enumerate(comps):
        for v in comp:
            scc_of[v] = cid

    total_volume = graph.num_edges
    target = max(1, -(-total_volume // num_shards))
    split_threshold = int(split_factor * target)

    shards: List[ShardInfo] = []
    shard_of: Dict[int, int] = {}
    class_members: Dict[int, List[int]] = {}

    def _emit(vertices: List[int], closed: bool, scc_class: Optional[int]) -> None:
        index = len(shards)
        volume = sum(graph.out_degree(v) for v in vertices)
        shards.append(
            ShardInfo(index, tuple(vertices), closed, scc_class, volume)
        )
        for v in vertices:
            shard_of[v] = index

    segment: List[int] = []
    segment_volume = 0
    next_class = 0
    for comp in topo:
        comp_volume = sum(graph.out_degree(v) for v in comp)
        if num_shards > 1 and comp_volume > split_threshold:
            # Close the running segment: a segment must never straddle a
            # split class's topo position, or paths between its two halves
            # could pass through the class and break the closed property.
            if segment:
                _emit(segment, True, None)
                segment, segment_volume = [], 0
            class_id = next_class
            next_class += 1
            class_members[class_id] = list(comp)
            pieces = _split_component(
                graph, list(comp), max(2, -(-comp_volume // target))
            )
            for piece in pieces:
                _emit(piece, False, class_id)
            continue
        segment.extend(comp)
        segment_volume += comp_volume
        if segment_volume >= target:
            _emit(segment, True, None)
            segment, segment_volume = [], 0
    if segment:
        _emit(segment, True, None)

    # Induced subgraphs. Every vertex keeps its original id, so worker
    # answers line up with the primary without translation.
    subgraphs = [
        DynamicDiGraph(vertices=info.vertices) for info in shards
    ]
    cross_out: Dict[int, Dict[int, List[Tuple[int, int]]]] = {
        info.index: {} for info in shards
    }
    boundary_sets: Dict[int, Set[int]] = {info.index: set() for info in shards}
    quotient_adj: Dict[int, Set[int]] = {info.index: set() for info in shards}
    live_out_sets: Dict[int, Set[int]] = {info.index: set() for info in shards}
    live_in_sets: Dict[int, Set[int]] = {info.index: set() for info in shards}
    num_cross = 0
    class_shards = {
        info.index for info in shards if info.scc_class is not None
    }
    for u, v in graph.edges():
        su, sv = shard_of[u], shard_of[v]
        if su == sv:
            subgraphs[su].add_edge(u, v)
            live_out_sets[su].add(u)
            live_in_sets[sv].add(v)
            continue
        num_cross += 1
        quotient_adj[su].add(sv)
        if sv in class_shards:
            # Never routed: any path through a split class is answered by
            # the class summaries before the search starts. The tail's
            # liveness is likewise omitted — if its only edges lead into a
            # class, the class rules own every verdict involving it.
            continue
        cross_out[su].setdefault(u, []).append((v, sv))
        boundary_sets[su].add(u)
        live_out_sets[su].add(u)
        live_in_sets[sv].add(v)
    boundary_out = {k: sorted(vs) for k, vs in boundary_sets.items()}

    # Quotient closure (over all shards, class pieces included, so the
    # negative rule accounts for paths through classes).
    quotient_reach: Dict[int, FrozenSet[int]] = {}
    for start in quotient_adj:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for nxt in quotient_adj[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        quotient_reach[start] = frozenset(seen)

    # Exact class summaries: one forward + one reverse BFS per class.
    reaches_class: Dict[int, FrozenSet[int]] = {}
    reached_from_class: Dict[int, FrozenSet[int]] = {}
    for class_id, members in class_members.items():
        reached_from_class[class_id] = frozenset(
            _bfs_closure(graph, members, forward=True)
        )
        reaches_class[class_id] = frozenset(
            _bfs_closure(graph, members, forward=False)
        )

    plan = ShardPlan(
        version=version,
        shard_of=shard_of,
        shards=shards,
        subgraphs=subgraphs,
        cross_out=cross_out,
        boundary_out=boundary_out,
        quotient_reach=quotient_reach,
        scc_of=scc_of,
        reaches_class=reaches_class,
        reached_from_class=reached_from_class,
        live_out={k: frozenset(vs) for k, vs in live_out_sets.items()},
        live_in={k: frozenset(vs) for k, vs in live_in_sets.items()},
        num_cross_edges=num_cross,
        build_seconds=time.perf_counter() - started,
        stats={
            "sccs": len(comps),
            "split_classes": next_class,
            "target_volume": target,
        },
    )
    return plan
