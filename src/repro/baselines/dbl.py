"""DBL — dynamic bidirectional labels (Lyu et al., 2021), insert-only.

Two lightweight, complementary label families on the *original* graph (no
DAG maintenance), exactly the design point the paper contrasts with
TOL/IP/DAGGER:

* **DL (landmark labels).** A small set of high-degree landmarks;
  ``DL_out(v)`` stores the landmarks reachable from ``v`` and ``DL_in(v)``
  the landmarks reaching ``v``. A non-empty ``DL_out(s) ∩ DL_in(t)`` proves
  reachability (sufficient condition).
* **BL (bloom-style hash labels).** Vertices hash into ``b`` buckets;
  ``BL_out(v)`` is the bucket bitmask of everything reachable from ``v``
  (``BL_in`` symmetric). ``s -> t`` requires ``BL_out(t) ⊆ BL_out(s)`` and
  ``BL_in(s) ⊆ BL_in(t)`` (necessary conditions).

Queries: try DL (certain positive), then BL (certain negative), else a
BL-pruned bidirectional BFS decides exactly.

Both label families are monotone under edge insertion — insert ``(u, v)``
merges ``v``'s out-labels into ``u`` and propagates up, and ``u``'s
in-labels into ``v`` propagating down — which is precisely why DBL cannot
handle deletions ("it has the inherent drawback of not being able to
handle edge deletions", Sec. II); :meth:`delete_edge` raises.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.base import ReachabilityMethod
from repro.graph.digraph import DynamicDiGraph
from repro.graph.scc import condensation


class DBLMethod(ReachabilityMethod):
    """DBL behind the uniform competitor interface (insert-only)."""

    name = "DBL"
    exact = True
    supports_deletions = False

    def __init__(
        self,
        graph: DynamicDiGraph,
        num_landmarks: int = 16,
        num_buckets: int = 64,
    ) -> None:
        super().__init__(graph)
        if num_landmarks < 0 or num_buckets <= 0:
            raise ValueError("invalid label sizes")
        self.num_landmarks = num_landmarks
        self.num_buckets = num_buckets
        self.dl_out: Dict[int, Set[int]] = {}
        self.dl_in: Dict[int, Set[int]] = {}
        self.bl_out: Dict[int, int] = {}
        self.bl_in: Dict[int, int] = {}
        self.landmarks: List[int] = []
        self._build()

    # ------------------------------------------------------------------
    def _bucket(self, v: int) -> int:
        # Deterministic scatter of vertex ids over bucket bits.
        return 1 << ((v * 2654435761) % self.num_buckets)

    def _build(self) -> None:
        graph = self.graph
        self.landmarks = sorted(
            graph.vertices(), key=lambda v: -graph.degree(v)
        )[: self.num_landmarks]
        landmark_set = set(self.landmarks)
        dag, scc_of, components = condensation(graph)
        # Per-component labels in topological order (Tarjan emits reverse
        # topological order, so components[0] is a sink).
        comp_dl_out: Dict[int, Set[int]] = {}
        comp_bl_out: Dict[int, int] = {}
        for cid in range(len(components)):  # reverse topo = sinks first
            dl: Set[int] = {v for v in components[cid] if v in landmark_set}
            bl = 0
            for v in components[cid]:
                bl |= self._bucket(v)
            for succ in dag.out_neighbors(cid):
                dl |= comp_dl_out[succ]
                bl |= comp_bl_out[succ]
            comp_dl_out[cid] = dl
            comp_bl_out[cid] = bl
        comp_dl_in: Dict[int, Set[int]] = {}
        comp_bl_in: Dict[int, int] = {}
        for cid in range(len(components) - 1, -1, -1):  # topo = sources first
            dl = {v for v in components[cid] if v in landmark_set}
            bl = 0
            for v in components[cid]:
                bl |= self._bucket(v)
            for pred in dag.in_neighbors(cid):
                dl |= comp_dl_in[pred]
                bl |= comp_bl_in[pred]
            comp_dl_in[cid] = dl
            comp_bl_in[cid] = bl
        self.dl_out = {v: set(comp_dl_out[scc_of[v]]) for v in graph.vertices()}
        self.dl_in = {v: set(comp_dl_in[scc_of[v]]) for v in graph.vertices()}
        self.bl_out = {v: comp_bl_out[scc_of[v]] for v in graph.vertices()}
        self.bl_in = {v: comp_bl_in[scc_of[v]] for v in graph.vertices()}

    # ------------------------------------------------------------------
    # Updates (insert-only)
    # ------------------------------------------------------------------
    def insert_edge(self, source: int, target: int) -> None:
        for v in (source, target):
            if not self.graph.has_vertex(v):
                self.graph.add_vertex(v)
                self.dl_out[v] = {v} if v in self.landmarks else set()
                self.dl_in[v] = {v} if v in self.landmarks else set()
                self.bl_out[v] = self._bucket(v)
                self.bl_in[v] = self._bucket(v)
        if not self.graph.add_edge(source, target):
            return
        self._propagate_up(source, self.dl_out[target], self.bl_out[target])
        self._propagate_down(target, self.dl_in[source], self.bl_in[source])

    def _propagate_up(self, start: int, dl: Set[int], bl: int) -> None:
        queue = deque([(start, dl, bl)])
        while queue:
            v, dl_new, bl_new = queue.popleft()
            merged_dl = self.dl_out[v] | dl_new
            merged_bl = self.bl_out[v] | bl_new
            if merged_dl == self.dl_out[v] and merged_bl == self.bl_out[v]:
                continue
            self.dl_out[v] = merged_dl
            self.bl_out[v] = merged_bl
            for w in self.graph.in_neighbors(v):
                queue.append((w, merged_dl, merged_bl))

    def _propagate_down(self, start: int, dl: Set[int], bl: int) -> None:
        queue = deque([(start, dl, bl)])
        while queue:
            v, dl_new, bl_new = queue.popleft()
            merged_dl = self.dl_in[v] | dl_new
            merged_bl = self.bl_in[v] | bl_new
            if merged_dl == self.dl_in[v] and merged_bl == self.bl_in[v]:
                continue
            self.dl_in[v] = merged_dl
            self.bl_in[v] = merged_bl
            for w in self.graph.out_neighbors(v):
                queue.append((w, merged_dl, merged_bl))

    def delete_edge(self, source: int, target: int) -> None:
        raise NotImplementedError(
            "DBL cannot handle edge deletions (labels are insert-monotone)"
        )

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> bool:
        if source == target:
            return True
        if source not in self.graph or target not in self.graph:
            return False
        # DL: certain positive.
        if self.dl_out[source] & self.dl_in[target]:
            return True
        # BL: certain negative.
        bl_out_s, bl_out_t = self.bl_out[source], self.bl_out[target]
        if bl_out_t & ~bl_out_s:
            return False
        bl_in_s, bl_in_t = self.bl_in[source], self.bl_in[target]
        if bl_in_s & ~bl_in_t:
            return False
        return self._pruned_bibfs(source, target)

    def _pruned_bibfs(self, source: int, target: int) -> bool:
        """Exact fallback: BiBFS pruning vertices that provably cannot lie
        on a source-target path (BL necessary conditions)."""
        bl_out_t = self.bl_out[target]
        bl_in_s = self.bl_in[source]
        visited_f = {source}
        visited_r = {target}
        frontier_f = [source]
        frontier_r = [target]
        while frontier_f or frontier_r:
            if frontier_f:
                met, frontier_f = self._layer(
                    frontier_f, visited_f, visited_r, True, bl_out_t
                )
                if met:
                    return True
            if frontier_r:
                met, frontier_r = self._layer(
                    frontier_r, visited_r, visited_f, False, bl_in_s
                )
                if met:
                    return True
        return False

    def _layer(
        self,
        layer: List[int],
        own: Set[int],
        other: Set[int],
        forward: bool,
        needed_mask: int,
    ) -> Tuple[bool, List[int]]:
        next_layer: List[int] = []
        for u in layer:
            for w in self.graph.neighbors(u, forward):
                if w in own:
                    continue
                if w in other:
                    return True, next_layer
                own.add(w)
                # Prune w when it provably cannot continue toward the goal:
                # forward vertices must reach t (BL_out(w) ⊇ BL_out(t)),
                # reverse vertices must be reachable from s (BL_in ⊇).
                mask = self.bl_out[w] if forward else self.bl_in[w]
                if needed_mask & ~mask:
                    continue
                next_layer.append(w)
        return False, next_layer
