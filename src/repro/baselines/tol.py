"""TOL — total-order 2-hop reachability labels (Zhu et al., SIGMOD 2014).

A Label-Only index over the SCC condensation: components are processed in
a total order of decreasing ``(d_in + 1) * (d_out + 1)``; the k-th
component ``h`` runs a pruned forward BFS adding ``h`` to ``L_in`` of every
component it reaches (and a pruned backward BFS for ``L_out``), with the
standard pruned-landmark-labeling prune: stop at any component already
covered by earlier hops. Queries are pure label intersections::

    s -> t   iff   L_out(scc(s)) ∩ L_in(scc(t)) != ∅

Dynamic behaviour. TOL's published maintenance assumes SCCs never merge or
split; on real dynamic graphs that assumption breaks constantly, so (as in
the paper's evaluation, where TOL's update time dominates its query time by
up to five orders of magnitude) updates degenerate to reconstruction. We
reconstruct *only when the transitive closure actually changes*, detected
cheaply:

* intra-SCC insert, or insert between already-reachable components — the
  closure is unchanged, labels stay exact, no rebuild;
* insert creating a new unreached DAG path, or any SCC merge — rebuild;
* delete that leaves the DAG edge multiset or reachability intact (checked
  with one DAG BFS) — no rebuild; otherwise rebuild.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set

from repro.baselines.base import ReachabilityMethod
from repro.graph.dag import DynamicDAG
from repro.graph.digraph import DynamicDiGraph


class TOLMethod(ReachabilityMethod):
    """TOL behind the uniform competitor interface."""

    name = "TOL"
    exact = True
    supports_deletions = True

    def __init__(self, graph: DynamicDiGraph) -> None:
        super().__init__(graph)
        self.dag = DynamicDAG(graph)
        self._structure_changed = False
        self.dag.on_merge = lambda merged, new_cid: self._mark_changed()
        self.dag.on_split = lambda old, new: self._mark_changed()
        self.label_in: Dict[int, Set[int]] = {}
        self.label_out: Dict[int, Set[int]] = {}
        self.rebuild_count = 0
        self._build()

    def _mark_changed(self) -> None:
        self._structure_changed = True

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        dag = self.dag.dag
        self.label_in = {c: set() for c in dag.vertices()}
        self.label_out = {c: set() for c in dag.vertices()}
        order = sorted(
            dag.vertices(),
            key=lambda c: -(dag.in_degree(c) + 1) * (dag.out_degree(c) + 1),
        )
        rank = {c: i for i, c in enumerate(order)}
        for hop in order:
            self._pruned_bfs(hop, rank, forward=True)
            self._pruned_bfs(hop, rank, forward=False)
        self.rebuild_count += 1

    def _pruned_bfs(self, hop: int, rank: Dict[int, int], forward: bool) -> None:
        """Label every component (not pruned) reached from ``hop``."""
        dag = self.dag.dag
        own = self.label_in if forward else self.label_out
        queue = deque([hop])
        visited = {hop}
        while queue:
            c = queue.popleft()
            if c != hop and self._covered(hop, c, forward):
                continue  # an earlier hop already certifies hop ~ c
            own[c].add(hop)
            for w in dag.neighbors(c, forward):
                if w not in visited and rank[w] > rank[hop]:
                    visited.add(w)
                    queue.append(w)

    def _covered(self, hop: int, c: int, forward: bool) -> bool:
        """Whether the pair (hop, c) is already answered by earlier labels."""
        if forward:
            return bool(self.label_out[hop] & self.label_in[c])
        return bool(self.label_out[c] & self.label_in[hop])

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, source: int, target: int) -> None:
        new_u = not self.graph.has_vertex(source)
        new_v = not self.graph.has_vertex(target)
        already = (
            not new_u
            and not new_v
            and self._label_query(
                self.dag.component_of(source), self.dag.component_of(target)
            )
        )
        self._structure_changed = False
        self.dag.insert_edge(source, target)
        if already and not self._structure_changed:
            return  # closure unchanged: labels remain exact
        if new_u or new_v:
            # A fresh singleton with one incident edge: extend labels
            # directly instead of rebuilding everything.
            self._attach_new_components(source, target)
            if not self._structure_changed:
                return
        self._build()

    def delete_edge(self, source: int, target: int) -> None:
        if not self.graph.has_edge(source, target):
            return
        cu = self.dag.component_of(source)
        cv = self.dag.component_of(target)
        self._structure_changed = False
        self.dag.delete_edge(source, target)
        if self._structure_changed:
            self._build()
            return
        if cu == cv:
            return  # SCC survived: closure unchanged
        if self.dag.dag.has_edge(cu, cv):
            return  # parallel original edges keep the DAG edge: unchanged
        if self._dag_bfs_reaches(cu, cv):
            return  # an alternative path preserves the closure
        self._build()

    def _attach_new_components(self, source: int, target: int) -> None:
        for v in (source, target):
            c = self.dag.component_of(v)
            if c not in self.label_in:
                self.label_in[c] = {c}
                self.label_out[c] = {c}
        cu = self.dag.component_of(source)
        cv = self.dag.component_of(target)
        if cu != cv:
            # Everything reaching cu now reaches cv's cone and vice versa;
            # the cheap sound fix for a *leaf* attachment is label union.
            self.label_in[cv] |= self.label_in[cu] | {cu}
            self.label_out[cu] |= self.label_out[cv] | {cv}

    def _dag_bfs_reaches(self, src: int, dst: int) -> bool:
        dag = self.dag.dag
        if src == dst:
            return True
        queue = deque([src])
        visited = {src}
        while queue:
            c = queue.popleft()
            for w in dag.out_neighbors(c):
                if w == dst:
                    return True
                if w not in visited:
                    visited.add(w)
                    queue.append(w)
        return False

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> bool:
        if source == target:
            return True
        if source not in self.graph or target not in self.graph:
            return False
        cs = self.dag.component_of(source)
        ct = self.dag.component_of(target)
        if cs == ct:
            return True
        return self._label_query(cs, ct)

    def _label_query(self, cs: int, ct: int) -> bool:
        if cs == ct:
            return True
        out_s = self.label_out.get(cs)
        in_t = self.label_in.get(ct)
        if out_s is None or in_t is None:
            return False
        return bool(out_s & in_t) or ct in out_s or cs in in_t