"""Competitor reachability methods re-implemented from their papers.

All methods implement the :class:`repro.baselines.base.ReachabilityMethod`
interface so the dynamic driver and benchmarks treat them uniformly:

* :class:`~repro.baselines.bibfs.BiBFSMethod` — bidirectional BFS (exact,
  index-free; the paper's strongest simple competitor).
* :class:`~repro.baselines.arrow.ArrowMethod` — ARROW random-walk
  reachability (approximate, index-free) [Sengupta et al., ICDE 2019].
* :class:`~repro.baselines.tol.TOLMethod` — total-order 2-hop labels on the
  maintained condensation DAG [Zhu et al., SIGMOD 2014].
* :class:`~repro.baselines.ip.IPMethod` — independent-permutation min-wise
  labels with pruned search [Wei et al., VLDBJ 2018].
* :class:`~repro.baselines.dagger.DaggerMethod` — incremental DAG plus
  GRAIL-style interval labels with pruned DFS [Yildirim et al., 2013].
* :class:`~repro.baselines.dbl.DBLMethod` — dynamic landmark + hash labels
  (insert-only) [Lyu et al., 2021]; an extension, excluded from the paper's
  main comparison because it cannot delete.
* :class:`~repro.baselines.pll.PLLMethod` — static pruned 2-hop labels
  (Label-Only, no updates): the representative of the paper's static
  index category, used by the throughput study.
"""

from repro.baselines.base import ReachabilityMethod
from repro.baselines.bibfs import BiBFSMethod, bibfs_is_reachable
from repro.baselines.arrow import ArrowMethod
from repro.baselines.tol import TOLMethod
from repro.baselines.ip import IPMethod
from repro.baselines.dagger import DaggerMethod
from repro.baselines.dbl import DBLMethod
from repro.baselines.pll import PLLMethod

__all__ = [
    "ReachabilityMethod",
    "BiBFSMethod",
    "bibfs_is_reachable",
    "ArrowMethod",
    "TOLMethod",
    "IPMethod",
    "DaggerMethod",
    "DBLMethod",
    "PLLMethod",
]
