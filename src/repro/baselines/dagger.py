"""DAGGER — incremental DAG maintenance + interval labels + pruned DFS.

Re-implemented from Yildirim, Chaoji, Zaki (2013). DAGGER keeps the SCC
condensation up to date under edge insertions and deletions (our
:class:`~repro.graph.dag.DynamicDAG` substrate) and prunes a unidirectional
DFS over the DAG with GRAIL-style interval labels: ``k`` independent
post-order traversals assign each component an interval, and
``u -> ... -> v`` requires ``interval_i(v) ⊆ interval_i(u)`` for every i.

Dynamic label maintenance follows DAGGER's over-approximation strategy:

* edge insert — widen the source component's intervals to cover the
  target's and propagate the widening to all ancestors;
* SCC merge — the merged component takes the union of its parts' intervals
  (then propagates);
* edge delete / SCC split — intervals are left as-is: they remain valid
  over-approximations (reachability only shrank), merely pruning less.

Since intervals are only ever a *necessary* condition and the DFS does the
actual deciding, queries stay exact no matter how loose the intervals get;
``rebuild_every`` updates trigger a fresh labeling to restore pruning
power. The paper's evaluation notes DAGGER's pruned unidirectional DFS
often loses to BiBFS — reproducing that behaviour is the point.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.base import ReachabilityMethod
from repro.graph.dag import DynamicDAG
from repro.graph.digraph import DynamicDiGraph

Interval = Tuple[int, int]


class DaggerMethod(ReachabilityMethod):
    """DAGGER behind the uniform competitor interface."""

    name = "DAGGER"
    exact = True
    supports_deletions = True

    def __init__(
        self,
        graph: DynamicDiGraph,
        num_labels: int = 2,
        rebuild_every: int = 512,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__(graph)
        if num_labels <= 0:
            raise ValueError("num_labels must be positive")
        self.num_labels = num_labels
        self.rebuild_every = rebuild_every
        self._rng = random.Random(seed)
        self.dag = DynamicDAG(graph)
        self.dag.on_merge = self._handle_merge
        self.dag.on_split = self._handle_split
        # labels[i][cid] = (lo, hi) for traversal i.
        self.labels: List[Dict[int, Interval]] = []
        self._updates_since_rebuild = 0
        self._next_post = 0
        self._build_labels()

    # ------------------------------------------------------------------
    # Label construction
    # ------------------------------------------------------------------
    def _build_labels(self) -> None:
        self.labels = [
            self._one_traversal() for _ in range(self.num_labels)
        ]
        self._updates_since_rebuild = 0

    def _one_traversal(self) -> Dict[int, Interval]:
        """One randomized post-order labeling of the current DAG."""
        dag = self.dag.dag
        post: Dict[int, int] = {}
        low: Dict[int, int] = {}
        counter = 0
        visited: Set[int] = set()
        roots = [c for c in dag.vertices() if dag.in_degree(c) == 0]
        others = [c for c in dag.vertices() if dag.in_degree(c) > 0]
        self._rng.shuffle(roots)
        order = roots + others  # cover non-root components of cyclic leftovers
        for root in order:
            if root in visited:
                continue
            # Iterative DFS computing post-order ranks and subtree minima.
            stack: List[Tuple[int, int, List[int]]] = [
                (root, 0, self._shuffled_children(root))
            ]
            visited.add(root)
            while stack:
                node, idx, children = stack[-1]
                if idx < len(children):
                    stack[-1] = (node, idx + 1, children)
                    child = children[idx]
                    if child not in visited:
                        visited.add(child)
                        stack.append(
                            (child, 0, self._shuffled_children(child))
                        )
                    continue
                stack.pop()
                counter += 1
                post[node] = counter
                lo = counter
                for child in children:
                    lo = min(lo, low[child])
                low[node] = lo
        self._next_post = counter + 1
        return {c: (low[c], post[c]) for c in post}

    def _shuffled_children(self, cid: int) -> List[int]:
        children = list(self.dag.dag.out_neighbors(cid))
        self._rng.shuffle(children)
        return children

    # ------------------------------------------------------------------
    # Dynamic maintenance
    # ------------------------------------------------------------------
    def _ensure_labeled(self, cid: int) -> None:
        for label in self.labels:
            if cid not in label:
                label[cid] = (self._next_post, self._next_post)
        self._next_post += 1

    def _widen(self, cid: int, target: int) -> None:
        """Make every interval of ``cid`` cover ``target``'s, propagating
        the widening to all ancestors that stop covering it."""
        queue = [(cid, target)]
        while queue:
            node, covered = queue.pop()
            changed = False
            for label in self.labels:
                lo_n, hi_n = label[node]
                lo_c, hi_c = label[covered]
                lo = min(lo_n, lo_c)
                hi = max(hi_n, hi_c)
                if (lo, hi) != (lo_n, hi_n):
                    label[node] = (lo, hi)
                    changed = True
            if changed:
                for parent in self.dag.dag.in_neighbors(node):
                    queue.append((parent, node))

    def _handle_merge(self, merged: Set[int], new_cid: int) -> None:
        for label in self.labels:
            lo = min(label[c][0] for c in merged if c in label)
            hi = max(label[c][1] for c in merged if c in label)
            for c in merged:
                label.pop(c, None)
            label[new_cid] = (lo, hi)
        for parent in self.dag.dag.in_neighbors(new_cid):
            self._widen(parent, new_cid)

    def _handle_split(self, old_cid: int, new_cids: List[int]) -> None:
        for label in self.labels:
            interval = label.pop(old_cid, None)
            if interval is None:
                interval = (0, self._next_post)
            for c in new_cids:
                label[c] = interval  # valid over-approximation

    def insert_edge(self, source: int, target: int) -> None:
        had_u = self.graph.has_vertex(source)
        had_v = self.graph.has_vertex(target)
        self.dag.insert_edge(source, target)
        if not had_u:
            self._ensure_labeled(self.dag.component_of(source))
        if not had_v:
            self._ensure_labeled(self.dag.component_of(target))
        cu = self.dag.component_of(source)
        cv = self.dag.component_of(target)
        if cu != cv:
            self._widen(cu, cv)
        self._count_update()

    def delete_edge(self, source: int, target: int) -> None:
        self.dag.delete_edge(source, target)
        self._count_update()

    def _count_update(self) -> None:
        self._updates_since_rebuild += 1
        if self.rebuild_every and self._updates_since_rebuild >= self.rebuild_every:
            self._build_labels()

    # ------------------------------------------------------------------
    # Query: interval-pruned unidirectional DFS over the DAG
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> bool:
        if source == target:
            return True
        if source not in self.graph or target not in self.graph:
            return False
        cs = self.dag.component_of(source)
        ct = self.dag.component_of(target)
        if cs == ct:
            return True
        target_intervals = [label[ct] for label in self.labels]
        if not self._may_reach(cs, target_intervals):
            return False
        stack = [cs]
        visited = {cs}
        while stack:
            c = stack.pop()
            if c == ct:
                return True
            for w in self.dag.dag.out_neighbors(c):
                if w in visited:
                    continue
                visited.add(w)
                if self._may_reach(w, target_intervals):
                    stack.append(w)
        return False

    def _may_reach(self, cid: int, target_intervals: List[Interval]) -> bool:
        for label, (t_lo, t_hi) in zip(self.labels, target_intervals):
            lo, hi = label[cid]
            if not (lo <= t_lo and t_hi <= hi):
                return False
        return True
