"""PLL — static pruned 2-hop labeling on the original graph.

The classic Label-Only construction (Cohen et al. 2003 labels built with
the pruned-landmark technique of Akiba et al. 2013, adapted to
reachability; the paper's related-work category [8-20]). Unlike TOL, this
variant indexes the *original* graph directly (hops are vertices, SCCs are
handled implicitly because mutually reachable vertices simply cover each
other) and supports **no updates at all** — it exists to quantify what the
paper says about static Label-Only schemes: fastest possible queries, and
a full reconstruction on any change.

The static-vs-dynamic trade is measured by ``bench_throughput.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set

from repro.baselines.base import ReachabilityMethod
from repro.graph.digraph import DynamicDiGraph


class PLLMethod(ReachabilityMethod):
    """Static pruned 2-hop labels; raises on any update."""

    name = "PLL"
    exact = True
    supports_deletions = False

    def __init__(self, graph: DynamicDiGraph) -> None:
        super().__init__(graph)
        self.label_in: Dict[int, Set[int]] = {}
        self.label_out: Dict[int, Set[int]] = {}
        self.build_count = 0
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        graph = self.graph
        self.label_in = {v: set() for v in graph.vertices()}
        self.label_out = {v: set() for v in graph.vertices()}
        order = sorted(
            graph.vertices(),
            key=lambda v: -(graph.in_degree(v) + 1) * (graph.out_degree(v) + 1),
        )
        rank = {v: i for i, v in enumerate(order)}
        for hop in order:
            self._pruned_bfs(hop, rank, forward=True)
            self._pruned_bfs(hop, rank, forward=False)
        self.build_count += 1

    def _pruned_bfs(self, hop: int, rank: Dict[int, int], forward: bool) -> None:
        graph = self.graph
        own = self.label_in if forward else self.label_out
        hop_rank = rank[hop]
        queue = deque([hop])
        visited = {hop}
        while queue:
            v = queue.popleft()
            if v != hop and self._covered(hop, v, forward):
                continue
            own[v].add(hop)
            for w in graph.neighbors(v, forward):
                if w not in visited and rank[w] > hop_rank:
                    visited.add(w)
                    queue.append(w)

    def _covered(self, hop: int, v: int, forward: bool) -> bool:
        if forward:
            return bool(self.label_out[hop] & self.label_in[v])
        return bool(self.label_out[v] & self.label_in[hop])

    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> bool:
        if source == target:
            return True
        out_s = self.label_out.get(source)
        in_t = self.label_in.get(target)
        if out_s is None or in_t is None:
            return False
        return (
            bool(out_s & in_t) or target in out_s or source in in_t
        )

    def insert_edge(self, source: int, target: int) -> None:
        raise NotImplementedError(
            "PLL is a static index; rebuild it for a new snapshot"
        )

    def delete_edge(self, source: int, target: int) -> None:
        raise NotImplementedError(
            "PLL is a static index; rebuild it for a new snapshot"
        )

    # ------------------------------------------------------------------
    @property
    def index_size(self) -> int:
        """Total number of label entries (the usual 2-hop size metric)."""
        return sum(len(s) for s in self.label_in.values()) + sum(
            len(s) for s in self.label_out.values()
        )

    def rebuild(self) -> None:
        """Reconstruct the labels for the graph's current state — the only
        way a static Label-Only index absorbs updates."""
        self._build()
