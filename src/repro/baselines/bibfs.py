"""Plain bidirectional BFS — the paper's strongest simple competitor.

"Interestingly, we find that BiBFS is actually more efficient than
state-of-the-art reachability algorithms on dynamic graphs when
considering both query and update time" (Sec. I). Index-free: updates
touch only the adjacency lists.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.baselines.base import ReachabilityMethod
from repro.core.budget import Budget, BudgetExceeded, PartialSearchState
from repro.core.stats import QueryStats
from repro.graph import kernels
from repro.graph.digraph import DynamicDiGraph


def bibfs_is_reachable(
    graph: DynamicDiGraph,
    source: int,
    target: int,
    stats: Optional[QueryStats] = None,
    use_kernels: Optional[bool] = None,
    budget: Optional[Budget] = None,
) -> bool:
    """Bidirectional BFS from ``source``/``target``, alternating at layer
    granularity exactly as Alg. 5 does from singleton frontiers.

    When a current-version CSR snapshot is already frozen (and kernels are
    enabled — ``use_kernels=None`` consults the process-wide switch), the
    search runs on the vectorized kernel instead of dict adjacency;
    answers are identical, updates still touch nothing but the adjacency
    lists, and a graph mid-churn (stale or absent snapshot) silently takes
    the dict path.

    ``budget`` is checkpointed once per layer. On the dict path a raise
    carries the current visited sets and frontiers as ``exc.partial``
    (plain BiBFS has no overlay, so the export is always sound); the
    kernel path's masks are kernel-local and abandoned on a raise.
    """
    if stats is None:
        stats = QueryStats()
    if source == target:
        stats.result = True
        return True
    if source not in graph or target not in graph:
        stats.result = False
        return False
    if use_kernels is None:
        use_kernels = kernels.kernels_enabled()
    if use_kernels:
        snapshot = graph.csr(build=False)
        if snapshot is not None:
            met, accesses = kernels.csr_bibfs(
                snapshot, source, target, budget=budget
            )
            stats.bibfs_edge_accesses += accesses
            stats.used_kernel = True
            stats.result = met
            return met
    visited_f: Set[int] = {source}
    visited_r: Set[int] = {target}
    frontier_f: List[int] = [source]
    frontier_r: List[int] = [target]
    base = stats.bibfs_edge_accesses
    charged = 0
    # An exhausted frontier is a proof of the negative: its visited set is
    # then the complete closure of one endpoint and contains no vertex of
    # the other side, so the surviving direction can never meet it.
    while frontier_f and frontier_r:
        if budget is not None:
            total = stats.bibfs_edge_accesses - base
            delta = total - charged
            charged = total
            try:
                budget.checkpoint(delta)
            except BudgetExceeded as exc:
                if exc.partial is None:
                    exc.partial = PartialSearchState(
                        fwd_visited=set(visited_f),
                        rev_visited=set(visited_r),
                        fwd_frontier=list(frontier_f),
                        rev_frontier=list(frontier_r),
                    )
                raise
        met, frontier_f = _expand(
            graph, frontier_f, visited_f, visited_r, True, stats
        )
        if met:
            _charge_rest(budget, stats.bibfs_edge_accesses - base - charged)
            stats.result = True
            return True
        if not frontier_f:
            break
        met, frontier_r = _expand(
            graph, frontier_r, visited_r, visited_f, False, stats
        )
        if met:
            _charge_rest(budget, stats.bibfs_edge_accesses - base - charged)
            stats.result = True
            return True
    _charge_rest(budget, stats.bibfs_edge_accesses - base - charged)
    stats.result = False
    return False


def _charge_rest(budget: Optional[Budget], delta: int) -> None:
    if budget is not None and delta:
        budget.charge(delta)


def _expand(
    graph: DynamicDiGraph,
    layer: List[int],
    own: Set[int],
    other: Set[int],
    forward: bool,
    stats: QueryStats,
) -> Tuple[bool, List[int]]:
    adj = graph.adjacency(forward)
    next_layer: List[int] = []
    accesses = 0
    for u in layer:
        for w in adj[u]:
            accesses += 1
            if w in own:
                continue
            if w in other:
                stats.bibfs_edge_accesses += accesses
                return True, next_layer
            own.add(w)
            next_layer.append(w)
    stats.bibfs_edge_accesses += accesses
    return False, next_layer


class BiBFSMethod(ReachabilityMethod):
    """BiBFS behind the uniform competitor interface."""

    name = "BiBFS"
    exact = True
    supports_deletions = True

    def query(self, source: int, target: int) -> bool:
        return bibfs_is_reachable(self.graph, source, target)
