"""IP — independent-permutation (k-min-wise) reachability labels.

Re-implemented from Wei, Yu, Lu, Jin (VLDBJ 2018). A Label+G scheme over
the SCC condensation with three ingredients:

* **k-min-wise labels.** A random permutation assigns each component a
  hash; ``L_out(c)`` keeps the ``k`` smallest hashes among the components
  reachable from ``c`` (computed in reverse topological order), ``L_in``
  symmetrically. If ``s -> t`` then ``Reach_out(t) ⊆ Reach_out(s)``, so any
  element of ``L_out(t)`` smaller than ``max(L_out(s))`` must appear in
  ``L_out(s)`` — violation proves non-reachability (and symmetrically for
  ``L_in``). The test is one-sided: passing it proves nothing.
* **Huge-vertex labels.** The ``h`` highest-degree components store their
  exact ancestor/descendant sets. A query passing through a huge vertex is
  answered immediately; the pruned DFS may then skip huge vertices
  entirely.
* **Level labels.** Topological levels: ``u -> v`` requires
  ``level(u) < level(v)``; ``mu`` caps the stored level (everything deeper
  shares the cap and prunes nothing), reproducing the paper's bounded
  level label.

Queries run a DFS over the DAG pruned by all three conditions — exact
because every prune is a necessary condition. Updates follow the same
closure-change detection as TOL (the published IP maintenance also assumes
SCCs never merge or split): rebuilds happen exactly when the transitive
closure changes, which on the paper's dynamic workloads makes update cost
dominate query cost.

Defaults ``k=2, h=2, mu=100`` follow the paper's Sec. VI-C setting for
sparse snapshots.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.base import ReachabilityMethod
from repro.graph.dag import DynamicDAG
from repro.graph.digraph import DynamicDiGraph
from repro.graph.traversal import topological_order


def _k_min_union(parts: List[Tuple[float, ...]], k: int) -> Tuple[float, ...]:
    merged = sorted(set().union(*[set(p) for p in parts])) if parts else []
    return tuple(merged[:k])


class IPMethod(ReachabilityMethod):
    """IP behind the uniform competitor interface."""

    name = "IP"
    exact = True
    supports_deletions = True

    def __init__(
        self,
        graph: DynamicDiGraph,
        k: int = 2,
        h: int = 2,
        mu: int = 100,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__(graph)
        if k <= 0 or h < 0 or mu <= 0:
            raise ValueError("k, mu must be positive and h non-negative")
        self.k = k
        self.h = h
        self.mu = mu
        self._rng = random.Random(seed)
        self.dag = DynamicDAG(graph)
        self._structure_changed = False
        self.dag.on_merge = lambda merged, new_cid: self._mark_changed()
        self.dag.on_split = lambda old, new: self._mark_changed()
        self.label_out: Dict[int, Tuple[float, ...]] = {}
        self.label_in: Dict[int, Tuple[float, ...]] = {}
        self.level: Dict[int, int] = {}
        self.huge: List[int] = []
        self.huge_desc: Dict[int, Set[int]] = {}
        self.huge_anc: Dict[int, Set[int]] = {}
        self.rebuild_count = 0
        self._build()

    def _mark_changed(self) -> None:
        self._structure_changed = True

    # ------------------------------------------------------------------
    # Index construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        dag = self.dag.dag
        order = topological_order(dag)
        self._hashes = {c: self._rng.random() for c in dag.vertices()}
        hashes = self._hashes

        # k-min-wise labels by dynamic programming over the topo order.
        self.label_out = {}
        for c in reversed(order):
            parts = [(hashes[c],)]
            parts.extend(self.label_out[w] for w in dag.out_neighbors(c))
            self.label_out[c] = _k_min_union(parts, self.k)
        self.label_in = {}
        for c in order:
            parts = [(hashes[c],)]
            parts.extend(self.label_in[w] for w in dag.in_neighbors(c))
            self.label_in[c] = _k_min_union(parts, self.k)

        # Capped topological levels.
        self.level = {}
        for c in order:
            lvl = 0
            for w in dag.in_neighbors(c):
                lvl = max(lvl, self.level[w] + 1)
            self.level[c] = min(lvl, self.mu)

        # Huge-vertex closures.
        self.huge = sorted(
            dag.vertices(),
            key=lambda c: -(dag.in_degree(c) + dag.out_degree(c)),
        )[: self.h]
        self.huge_desc = {c: self._closure(c, forward=True) for c in self.huge}
        self.huge_anc = {c: self._closure(c, forward=False) for c in self.huge}
        self.rebuild_count += 1

    def _closure(self, start: int, forward: bool) -> Set[int]:
        dag = self.dag.dag
        seen = {start}
        queue = deque([start])
        while queue:
            c = queue.popleft()
            for w in dag.neighbors(c, forward):
                if w not in seen:
                    seen.add(w)
                    queue.append(w)
        return seen

    # ------------------------------------------------------------------
    # Updates (closure-change detection, as in TOL)
    # ------------------------------------------------------------------
    def insert_edge(self, source: int, target: int) -> None:
        new_u = not self.graph.has_vertex(source)
        new_v = not self.graph.has_vertex(target)
        already = False
        if not (new_u or new_v):
            already = self._reaches_exact(
                self.dag.component_of(source), self.dag.component_of(target)
            )
        self._structure_changed = False
        self.dag.insert_edge(source, target)
        if already and not self._structure_changed:
            return
        if (new_u or new_v) and not self._structure_changed:
            # A fresh endpoint cannot have merged anything; extend the
            # labels incrementally instead of rebuilding (this is why IP's
            # updates generally beat TOL's).
            self._attach(source, target, new_u, new_v)
            return
        self._build()

    def _attach(self, source: int, target: int, new_u: bool, new_v: bool) -> None:
        """Incremental label extension for an edge with a new endpoint."""
        cu = self.dag.component_of(source)
        cv = self.dag.component_of(target)
        for is_new, c in ((new_u, cu), (new_v, cv)):
            if is_new and c not in self._hashes:
                h = self._rng.random()
                self._hashes[c] = h
                self.label_out[c] = (h,)
                self.label_in[c] = (h,)
                self.level[c] = 0
        if cu == cv:
            return  # self-loop on a fresh vertex: nothing to propagate
        # Levels: keep the invariant level(a) < level(b) for a ~> b.
        if new_v:
            self.level[cv] = min(self.level[cu] + 1, self.mu)
        elif new_u:
            self.level[cu] = self.level[cv] - 1
        # Min-hash labels: cv's cone gains cu's in-set and vice versa.
        self._propagate(cv, self.label_in[cu], self.label_in, forward=True)
        self._propagate(cu, self.label_out[cv], self.label_out, forward=False)
        # Huge closures: the new component joins the relevant cones.
        for x in self.huge:
            if new_v and cu in self.huge_desc[x]:
                self.huge_desc[x].add(cv)
            if new_u and cv in self.huge_anc[x]:
                self.huge_anc[x].add(cu)

    def _propagate(
        self,
        start: int,
        candidates: Tuple[float, ...],
        labels: Dict[int, Tuple[float, ...]],
        forward: bool,
    ) -> None:
        """Merge ``candidates`` into the labels of ``start`` and onward
        through the DAG (downstream for in-labels, upstream for out-labels)
        until nothing changes."""
        dag = self.dag.dag
        queue = deque([(start, candidates)])
        while queue:
            node, incoming = queue.popleft()
            merged = _k_min_union([labels[node], incoming], self.k)
            if merged == labels[node]:
                continue
            labels[node] = merged
            for w in dag.neighbors(node, forward):
                queue.append((w, merged))

    def delete_edge(self, source: int, target: int) -> None:
        if not self.graph.has_edge(source, target):
            return
        cu = self.dag.component_of(source)
        cv = self.dag.component_of(target)
        self._structure_changed = False
        self.dag.delete_edge(source, target)
        if self._structure_changed:
            self._build()
            return
        if cu == cv:
            return
        if self.dag.dag.has_edge(cu, cv):
            return
        if cv in self._closure_limited(cu):
            return
        self._build()

    def _closure_limited(self, start: int) -> Set[int]:
        return self._closure(start, forward=True)

    # ------------------------------------------------------------------
    # Query: huge-vertex check, then triple-pruned DFS
    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> bool:
        if source == target:
            return True
        if source not in self.graph or target not in self.graph:
            return False
        cs = self.dag.component_of(source)
        ct = self.dag.component_of(target)
        return self._reaches_exact(cs, ct)

    def _reaches_exact(self, cs: int, ct: int) -> bool:
        if cs == ct:
            return True
        for x in self.huge:
            if cs in self.huge_anc[x] and ct in self.huge_desc[x]:
                return True
        if self._pruned(cs, ct):
            return False
        dag = self.dag.dag
        huge_set = set(self.huge) - {cs, ct}
        stack = [cs]
        visited = {cs}
        while stack:
            c = stack.pop()
            if c == ct:
                return True
            for w in dag.out_neighbors(c):
                if w in visited or w in huge_set:
                    # Any path through a huge vertex was already decided by
                    # the closure check above.
                    continue
                visited.add(w)
                if not self._pruned(w, ct):
                    stack.append(w)
        return False

    def _pruned(self, c: int, ct: int) -> bool:
        """True when a necessary condition for ``c -> ct`` fails."""
        if c == ct:
            return False
        if self.level[c] >= self.level[ct] and self.level[ct] < self.mu:
            return True
        out_c, out_t = self.label_out[c], self.label_out[ct]
        if out_c and len(out_c) >= self.k:
            ceiling = out_c[-1]
            for value in out_t:
                if value < ceiling and value not in out_c:
                    return True
        in_c, in_t = self.label_in[c], self.label_in[ct]
        if in_t and len(in_t) >= self.k:
            ceiling = in_t[-1]
            for value in in_c:
                if value < ceiling and value not in in_t:
                    return True
        return False
