"""The uniform interface every reachability method implements.

The dynamic driver (:mod:`repro.dynamic.driver`), the comparison
experiments, and the QpU sweeps all interact with methods exclusively
through this interface, mirroring how the paper times "query" and "update"
as the two primitive operations of each framework.
"""

from __future__ import annotations

import abc

from repro.graph.digraph import DynamicDiGraph


class ReachabilityMethod(abc.ABC):
    """A reachability framework bound to one (possibly dynamic) graph.

    Subclasses own whatever state they need (an index, the adjacency lists,
    nothing at all) and must keep it consistent under the update methods.
    """

    #: Human-readable name used in result tables.
    name: str = "abstract"
    #: Whether the method guarantees exact answers.
    exact: bool = True
    #: Whether the method supports :meth:`delete_edge`.
    supports_deletions: bool = True

    def __init__(self, graph: DynamicDiGraph) -> None:
        self.graph = graph

    @abc.abstractmethod
    def query(self, source: int, target: int) -> bool:
        """Answer whether ``target`` is reachable from ``source``."""

    def insert_edge(self, source: int, target: int) -> None:
        """Apply an edge insertion (index-free default: adjacency only)."""
        self.graph.add_edge(source, target)

    def delete_edge(self, source: int, target: int) -> None:
        """Apply an edge deletion (index-free default: adjacency only)."""
        if not self.supports_deletions:
            raise NotImplementedError(
                f"{self.name} does not support edge deletions"
            )
        self.graph.remove_edge(source, target)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
