"""ARROW — approximate reachability by random walks (Sengupta et al., ICDE 2019).

ARROW answers ``s -> t`` by launching random walks from ``s`` (and, in the
bidirectional variant, reverse walks from ``t``) and reporting reachable
when any walk touches the target's side. It is index-free (updates touch
only adjacency) but approximate: it can report false negatives, so the
paper tunes its knobs until accuracy exceeds 95% (Sec. VI-C).

Knobs, reproduced per the paper's protocol:

* ``c_walk_length`` — walk length = ``ceil(c_walk_length * L)`` where ``L``
  is a sampled diameter estimate of the current snapshot (the paper sets
  ``c_walkLength = 1``);
* ``c_num_walks`` — number of walks = ``ceil(c_num_walks * sqrt(m))``;
  starts at 0.01 and is enlarged in 0.01 steps by
  :func:`tune_arrow_accuracy` until measured accuracy exceeds the target.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.baselines.base import ReachabilityMethod
from repro.graph.digraph import DynamicDiGraph
from repro.graph.traversal import estimate_diameter

_DIAMETER_SAMPLES = 8
_MIN_WALK_LENGTH = 4


class ArrowMethod(ReachabilityMethod):
    """ARROW behind the uniform competitor interface."""

    name = "ARROW"
    exact = False
    supports_deletions = True

    def __init__(
        self,
        graph: DynamicDiGraph,
        c_walk_length: float = 1.0,
        c_num_walks: float = 0.01,
        bidirectional: bool = True,
        seed: Optional[int] = 0,
    ) -> None:
        super().__init__(graph)
        if c_walk_length <= 0 or c_num_walks <= 0:
            raise ValueError("ARROW constants must be positive")
        self.c_walk_length = c_walk_length
        self.c_num_walks = c_num_walks
        self.bidirectional = bidirectional
        self._rng = random.Random(seed)
        self._diameter_estimate: Optional[int] = None
        self._diameter_edges = -1

    # ------------------------------------------------------------------
    def _walk_length(self) -> int:
        m = self.graph.num_edges
        if self._diameter_estimate is None or abs(m - self._diameter_edges) > max(
            0.2 * max(self._diameter_edges, 1), 16
        ):
            vertices = list(self.graph.vertices())
            if vertices:
                samples = [
                    vertices[self._rng.randrange(len(vertices))]
                    for _ in range(min(_DIAMETER_SAMPLES, len(vertices)))
                ]
                self._diameter_estimate = max(
                    estimate_diameter(self.graph, samples), _MIN_WALK_LENGTH
                )
            else:
                self._diameter_estimate = _MIN_WALK_LENGTH
            self._diameter_edges = m
        return max(int(math.ceil(self.c_walk_length * self._diameter_estimate)), 1)

    def _num_walks(self) -> int:
        m = max(self.graph.num_edges, 1)
        return max(int(math.ceil(self.c_num_walks * math.sqrt(m))), 1)

    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> bool:
        if source == target:
            return True
        if source not in self.graph or target not in self.graph:
            return False
        length = self._walk_length()
        walks = self._num_walks()
        if not self.bidirectional:
            return self._unidirectional(source, target, walks, length)
        # Bidirectional: seed the target side with one bounded reverse
        # exploration, then check forward walks against it.
        reverse_seen = self._reverse_territory(target, walks, length)
        if source in reverse_seen:
            return True
        for _ in range(walks):
            if self._forward_walk_hits(source, reverse_seen, length):
                return True
        return False

    def _unidirectional(
        self, source: int, target: int, walks: int, length: int
    ) -> bool:
        for _ in range(walks):
            if self._forward_walk_hits(source, {target}, length):
                return True
        return False

    def _forward_walk_hits(self, source: int, goal_set, length: int) -> bool:
        current = source
        for _ in range(length):
            nbrs = self.graph.out_neighbors(current)
            if not nbrs:
                return False
            current = nbrs[self._rng.randrange(len(nbrs))]
            if current in goal_set:
                return True
        return False

    def _reverse_territory(self, target: int, walks: int, length: int):
        seen = {target}
        for _ in range(walks):
            current = target
            for _ in range(length):
                nbrs = self.graph.in_neighbors(current)
                if not nbrs:
                    break
                current = nbrs[self._rng.randrange(len(nbrs))]
                seen.add(current)
        return seen


def tune_arrow_accuracy(
    graph: DynamicDiGraph,
    queries: Sequence[Tuple[int, int]],
    ground_truth: Sequence[bool],
    target_accuracy: float = 0.95,
    c_num_walks_start: float = 0.01,
    c_num_walks_step: float = 0.01,
    max_steps: int = 200,
    seed: Optional[int] = 0,
) -> Tuple[ArrowMethod, float]:
    """The paper's tuning loop: grow ``c_numWalks`` until accuracy > target.

    Returns the tuned method and the achieved accuracy. Raises
    ``RuntimeError`` when ``max_steps`` increments do not suffice.
    """
    if len(queries) != len(ground_truth):
        raise ValueError("queries and ground_truth must have equal length")
    c = c_num_walks_start
    for _ in range(max_steps):
        method = ArrowMethod(graph, c_num_walks=c, seed=seed)
        if not queries:
            return method, 1.0
        correct = sum(
            1
            for (s, t), expected in zip(queries, ground_truth)
            if method.query(s, t) == expected
        )
        accuracy = correct / len(queries)
        if accuracy >= target_accuracy:
            return method, accuracy
        c += c_num_walks_step
    raise RuntimeError(
        f"ARROW accuracy {target_accuracy} not reached within {max_steps} steps"
    )
