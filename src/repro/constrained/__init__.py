"""Label-constrained reachability (LCR) — the paper's stated future work.

"In the future, we plan to explore adapting our approach for various forms
of constrained reachability queries" (Sec. VII). This subpackage provides
that adaptation for the most common form, *label-constrained* reachability:
every edge carries a label, and a query asks whether ``t`` is reachable
from ``s`` using only edges whose labels belong to an allowed set.

Engines provided:

* :class:`~repro.constrained.lcr.ConstrainedReachability` — maintains one
  IFCA engine per queried label set over an incrementally synchronized
  filtered view of the labeled graph (updates stay O(#active views));
* :func:`~repro.constrained.lcr.constrained_bibfs` — an on-the-fly
  filtering BiBFS used as the exact cross-check and as the baseline for
  the LCR ablation bench;
* :class:`~repro.constrained.hop.HopBoundedReachability` — the other
  classic constrained form, "within k hops", answered by a
  distance-tracking bidirectional BFS.
"""

from repro.constrained.labeled import LabeledDiGraph
from repro.constrained.lcr import ConstrainedReachability, constrained_bibfs
from repro.constrained.hop import HopBoundedReachability, hop_bounded_reachable

__all__ = [
    "LabeledDiGraph",
    "ConstrainedReachability",
    "constrained_bibfs",
    "HopBoundedReachability",
    "hop_bounded_reachable",
]
