"""Hop-constrained reachability: is ``t`` within ``k`` hops of ``s``?

The second classic constrained-reachability form (after label constraints)
from the paper's future-work direction. Bounded-hop questions arise
wherever edges model one "step" of influence or risk: money that must
launder through at most ``k`` accounts, access policies limited to
friends-of-friends, and so on.

The engine is a distance-tracking bidirectional BFS: expand the forward
side to ``ceil(k/2)`` levels and the reverse side level by level,
declaring success as soon as some vertex ``v`` has
``dist_f(v) + dist_r(v) <= k``. Completeness: on any path of length
``L <= k``, the vertex at forward-distance ``min(L, ceil(k/2))`` is
reached by both searches with distances summing to at most ``L``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.graph.digraph import DynamicDiGraph


def hop_bounded_reachable(
    graph: DynamicDiGraph, source: int, target: int, max_hops: int
) -> bool:
    """Whether a directed path of at most ``max_hops`` edges exists."""
    if max_hops < 0:
        raise ValueError("max_hops must be non-negative")
    if source == target:
        return source in graph
    if source not in graph or target not in graph or max_hops == 0:
        return False

    forward_limit = (max_hops + 1) // 2
    dist_f = _bounded_distances(graph, source, forward_limit, forward=True)
    if dist_f.get(target, max_hops + 1) <= max_hops:
        return True
    # Reverse expansion: stop as soon as a meeting within budget exists.
    dist_r: Dict[int, int] = {target: 0}
    frontier: List[int] = [target]
    for depth in range(1, max_hops + 1):
        next_frontier: List[int] = []
        for u in frontier:
            for w in graph.in_neighbors(u):
                if w in dist_r:
                    continue
                if dist_f.get(w, max_hops + 1) + depth <= max_hops:
                    return True
                dist_r[w] = depth
                next_frontier.append(w)
        if not next_frontier:
            return False
        frontier = next_frontier
    return False


def _bounded_distances(
    graph: DynamicDiGraph, start: int, limit: int, forward: bool
) -> Dict[int, int]:
    dist = {start: 0}
    frontier = [start]
    for depth in range(1, limit + 1):
        next_frontier: List[int] = []
        for u in frontier:
            for w in graph.neighbors(u, forward):
                if w not in dist:
                    dist[w] = depth
                    next_frontier.append(w)
        frontier = next_frontier
        if not frontier:
            break
    return dist


class HopBoundedReachability:
    """A small engine wrapper: fixed graph, per-query hop budgets.

    Index-free like everything else here — updates are adjacency changes.
    """

    def __init__(self, graph: Optional[DynamicDiGraph] = None) -> None:
        self.graph = graph if graph is not None else DynamicDiGraph()

    def insert_edge(self, u: int, v: int) -> None:
        self.graph.add_edge(u, v)

    def delete_edge(self, u: int, v: int) -> None:
        self.graph.remove_edge(u, v)

    def query(self, source: int, target: int, max_hops: int) -> bool:
        return hop_bounded_reachable(self.graph, source, target, max_hops)

    def min_hops(self, source: int, target: int, limit: int = 1 << 30) -> Optional[int]:
        """The hop distance ``s -> t`` (binary search over the budget), or
        ``None`` when unreachable within ``limit``."""
        if source == target:
            return 0 if source in self.graph else None
        if not hop_bounded_reachable(
            self.graph, source, target, min(limit, self.graph.num_vertices)
        ):
            return None
        low, high = 1, min(limit, self.graph.num_vertices)
        while low < high:
            mid = (low + high) // 2
            if hop_bounded_reachable(self.graph, source, target, mid):
                high = mid
            else:
                low = mid + 1
        return low
