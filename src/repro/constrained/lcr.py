"""Label-constrained reachability engines.

:class:`ConstrainedReachability` adapts IFCA to LCR exactly the way the
framework's index-freeness suggests: a query under label set ``L`` is an
ordinary reachability query on the ``L``-restricted subgraph, so the
engine keeps one IFCA instance per *queried* label set over an
incrementally synchronized filtered view. Updates are index-free all the
way down: inserting an edge with label ``l`` touches the adjacency lists
of precisely the active views whose set contains ``l``.

The memory/latency trade-off is the classic LCR one: with an alphabet of
``k`` labels there are ``2^k`` possible sets, but workloads query few
distinct ones; views are created lazily and can be dropped via
:meth:`ConstrainedReachability.evict`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.constrained.labeled import Label, LabeledDiGraph
from repro.core.ifca import IFCA
from repro.core.params import IFCAParams


def constrained_bibfs(
    labeled: LabeledDiGraph,
    source: int,
    target: int,
    allowed: Iterable[Label],
) -> bool:
    """Exact LCR by bidirectional BFS with on-the-fly label filtering."""
    graph = labeled.graph
    if source == target:
        return source in graph
    if source not in graph or target not in graph:
        return False
    allowed_set = set(allowed)
    label_of = labeled.label_of
    visited_f: Set[int] = {source}
    visited_r: Set[int] = {target}
    frontier_f: List[int] = [source]
    frontier_r: List[int] = [target]
    while frontier_f or frontier_r:
        if frontier_f:
            next_f: List[int] = []
            for u in frontier_f:
                for w in graph.out_neighbors(u):
                    if label_of(u, w) not in allowed_set or w in visited_f:
                        continue
                    if w in visited_r:
                        return True
                    visited_f.add(w)
                    next_f.append(w)
            frontier_f = next_f
        if frontier_r:
            next_r: List[int] = []
            for u in frontier_r:
                for w in graph.in_neighbors(u):
                    if label_of(w, u) not in allowed_set or w in visited_r:
                        continue
                    if w in visited_f:
                        return True
                    visited_r.add(w)
                    next_r.append(w)
            frontier_r = next_r
    return False


class ConstrainedReachability:
    """IFCA-backed label-constrained reachability over a dynamic graph."""

    def __init__(
        self,
        labeled: Optional[LabeledDiGraph] = None,
        params: Optional[IFCAParams] = None,
        max_views: int = 64,
    ) -> None:
        if max_views <= 0:
            raise ValueError("max_views must be positive")
        self.labeled = labeled if labeled is not None else LabeledDiGraph()
        self.params = params if params is not None else IFCAParams()
        self.max_views = max_views
        self._views: Dict[FrozenSet[Label], IFCA] = {}

    # ------------------------------------------------------------------
    # Updates: index-free, propagated to the affected views only
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int, label: Label) -> None:
        previous = self.labeled.add_edge(u, v, label)
        for label_set, engine in self._views.items():
            engine.graph.add_vertex(u)
            engine.graph.add_vertex(v)
            if previous is not None and previous in label_set:
                # Re-label: the old edge leaves views that no longer allow it.
                if label not in label_set:
                    engine.delete_edge(u, v)
                continue
            if label in label_set:
                engine.insert_edge(u, v)

    def delete_edge(self, u: int, v: int) -> None:
        label = self.labeled.remove_edge(u, v)
        if label is None:
            return
        for label_set, engine in self._views.items():
            if label in label_set:
                engine.delete_edge(u, v)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, source: int, target: int, allowed: Iterable[Label]) -> bool:
        """Is ``target`` reachable from ``source`` via allowed-label edges?"""
        return self._engine_for(frozenset(allowed)).is_reachable(source, target)

    def query_with_stats(
        self, source: int, target: int, allowed: Iterable[Label]
    ):
        """LCR answer plus the underlying IFCA per-query statistics."""
        return self._engine_for(frozenset(allowed)).query_with_stats(
            source, target
        )

    def _engine_for(self, label_set: FrozenSet[Label]) -> IFCA:
        engine = self._views.get(label_set)
        if engine is None:
            if len(self._views) >= self.max_views:
                raise RuntimeError(
                    f"view budget exhausted ({self.max_views}); evict some "
                    "label sets or raise max_views"
                )
            engine = IFCA(self.labeled.restricted(label_set), self.params)
            self._views[label_set] = engine
        return engine

    # ------------------------------------------------------------------
    # View management
    # ------------------------------------------------------------------
    @property
    def active_view_count(self) -> int:
        return len(self._views)

    def active_views(self) -> List[FrozenSet[Label]]:
        return list(self._views)

    def evict(self, allowed: Iterable[Label]) -> bool:
        """Drop the cached view for one label set; returns whether it existed."""
        return self._views.pop(frozenset(allowed), None) is not None

    def evict_all(self) -> None:
        self._views.clear()
