"""A directed graph whose edges carry labels.

The label model follows the label-constrained reachability literature
(e.g. the index-free LCR work the paper cites as [56]): one label per
edge, drawn from a small alphabet (relationship types, transaction kinds,
link classes). Re-labeling an existing edge is an update like any other.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Set, Tuple

from repro.graph.digraph import DynamicDiGraph

Label = Hashable
Edge = Tuple[int, int]


class LabeledDiGraph:
    """A dynamic digraph with one label per edge.

    Wraps a :class:`DynamicDiGraph` (exposed read-only as ``.graph``) plus
    an edge-to-label map. All reachability semantics over label subsets
    are defined by :meth:`restricted`.
    """

    def __init__(
        self,
        edges: Optional[Iterable[Tuple[int, int, Label]]] = None,
    ) -> None:
        self.graph = DynamicDiGraph()
        self._labels: Dict[Edge, Label] = {}
        if edges is not None:
            for u, v, label in edges:
                self.add_edge(u, v, label)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    def labels(self) -> Set[Label]:
        """The set of labels currently present on some edge."""
        return set(self._labels.values())

    def label_of(self, u: int, v: int) -> Label:
        """The label of edge ``(u, v)``; raises ``KeyError`` if absent."""
        return self._labels[(u, v)]

    def edges(self) -> Iterator[Tuple[int, int, Label]]:
        for (u, v), label in self._labels.items():
            yield u, v, label

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._labels

    # ------------------------------------------------------------------
    def add_vertex(self, v: int) -> None:
        self.graph.add_vertex(v)

    def add_edge(self, u: int, v: int, label: Label) -> Optional[Label]:
        """Insert or re-label edge ``(u, v)``.

        Returns the previous label when the edge existed (a re-label),
        otherwise ``None``.
        """
        previous = self._labels.get((u, v))
        self.graph.add_edge(u, v)
        self._labels[(u, v)] = label
        return previous

    def remove_edge(self, u: int, v: int) -> Optional[Label]:
        """Delete edge ``(u, v)``; returns its label, or ``None``."""
        label = self._labels.pop((u, v), None)
        if label is not None:
            self.graph.remove_edge(u, v)
        return label

    # ------------------------------------------------------------------
    def restricted(self, allowed: Iterable[Label]) -> DynamicDiGraph:
        """The subgraph containing exactly the edges whose label is
        allowed (every vertex is retained)."""
        allowed_set = set(allowed)
        sub = DynamicDiGraph(vertices=self.graph.vertices())
        for (u, v), label in self._labels.items():
            if label in allowed_set:
                sub.add_edge(u, v)
        return sub

    def __repr__(self) -> str:
        return (
            f"LabeledDiGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"labels={sorted(map(str, self.labels()))})"
        )
